"""Query tokenisation.

Search queries are short, noisy strings; the pipeline used throughout
the repository (sensitivity analysis, SimAttack, the search engine
indexer) is: lowercase → split on non-alphanumerics → drop stopwords
and single characters → optionally Porter-stem.
"""

from __future__ import annotations

import re
from typing import List

# A compact English stopword list — enough to keep function words out of
# user profiles without deleting informative query terms.
STOPWORDS = frozenset("""
a about above after again all am an and any are as at be because been
before being below between both but by can did do does doing down during
each few for from further had has have having he her here hers him his
how i if in into is it its itself just me more most my myself no nor not
now of off on once only or other our ours out over own same she so some
such than that the their theirs them then there these they this those
through to too under until up very was we were what when where which
while who whom why will with you your yours
""".split())

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str, drop_stopwords: bool = True,
             min_length: int = 2) -> List[str]:
    """Split *text* into normalised tokens.

    Parameters
    ----------
    text:
        Raw query or document text.
    drop_stopwords:
        Remove members of :data:`STOPWORDS`.
    min_length:
        Drop tokens shorter than this many characters.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    return [
        token for token in tokens
        if len(token) >= min_length
        and not (drop_stopwords and token in STOPWORDS)
    ]


def stemmed_tokens(text: str) -> List[str]:
    """Tokenise then Porter-stem (the canonical profile representation)."""
    from repro.text.stem import porter_stem

    return [porter_stem(token) for token in tokenize(text)]
