"""Text and NLP substrate.

Everything CYCLOSA's sensitivity analysis needs, implemented from
scratch:

- :mod:`repro.text.tokenize`  — query tokenisation + stopwords.
- :mod:`repro.text.stem`      — the Porter stemmer (memoized).
- :mod:`repro.text.cache`     — bounded LRU memos in front of the
  tokenize → stem → vectorize pipeline, with hit/miss/eviction
  counters exportable through :mod:`repro.obs`
  (see ``docs/performance.md``).
- :mod:`repro.text.vectorize` — binary/sparse term vectors and cosine
  similarity (the distance both the linkability assessment and the
  SimAttack adversary use).
- :mod:`repro.text.smoothing` — exponential smoothing of ranked
  similarities (the aggregation SimAttack defines).
- :mod:`repro.text.lda`       — Latent Dirichlet Allocation via
  collapsed Gibbs sampling (Blei et al. 2003), used to learn
  sensitive-topic term dictionaries.
- :mod:`repro.text.wordnet`   — a synthetic WordNet: synsets plus
  eXtended-WordNet-Domains-style domain labels, with calibrated
  coverage/noise so dictionary tagging shows the paper's
  precision/recall trade-off (Table II).
"""

from repro.text.cache import (
    LruCache,
    cache_stats,
    clear_caches,
    install_metrics,
    publish_metrics,
)
from repro.text.smoothing import exponential_smoothing, smoothed_similarity
from repro.text.stem import porter_stem
from repro.text.tokenize import STOPWORDS, stemmed_terms, stemmed_tokens, tokenize
from repro.text.vectorize import (
    TermVector,
    cosine_binary,
    cosine_sparse,
    query_vector,
)

__all__ = [
    "exponential_smoothing",
    "smoothed_similarity",
    "porter_stem",
    "STOPWORDS",
    "tokenize",
    "stemmed_terms",
    "stemmed_tokens",
    "LruCache",
    "cache_stats",
    "clear_caches",
    "install_metrics",
    "publish_metrics",
    "TermVector",
    "cosine_binary",
    "cosine_sparse",
    "query_vector",
]
