"""Term vectors and cosine similarity.

The paper's linkability assessment (§V-A2) and SimAttack (§VII-E) both
represent a query as a *binary* vector over its terms and compare with
cosine similarity; user profiles additionally use weighted (count)
vectors. Both representations are provided here as lightweight sparse
structures.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping

from repro.text.cache import DEFAULT_QUERY_CACHE_SIZE, LruCache
from repro.text.tokenize import stemmed_terms, tokenize

TermVector = Dict[str, float]

#: (query text, stem?) -> frozenset vector. Immutable values, shared.
_VECTOR_CACHE = LruCache("query_vectors", DEFAULT_QUERY_CACHE_SIZE)


def query_vector(text: str, stem: bool = True) -> FrozenSet[str]:
    """The binary term-set representation of a query.

    Memoized behind a bounded LRU (see :mod:`repro.text.cache`): the
    sensitivity pipeline, SimAttack and the baselines all vectorize the
    same query strings repeatedly, and the returned ``frozenset`` is
    immutable so one instance serves every caller.
    """
    key = (text, stem)
    try:
        return _VECTOR_CACHE.lookup(key)
    except KeyError:
        terms = stemmed_terms(text) if stem else tokenize(text)
        return _VECTOR_CACHE.store(key, frozenset(terms))


def count_vector(tokens: Iterable[str]) -> TermVector:
    """Sparse term-count vector."""
    vector: TermVector = {}
    for token in tokens:
        vector[token] = vector.get(token, 0.0) + 1.0
    return vector


def cosine_binary(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Cosine similarity between two binary term sets.

    Equals ``|A ∩ B| / sqrt(|A| |B|)``; 0.0 when either set is empty.
    """
    if not a or not b:
        return 0.0
    # Iterate over the smaller set for speed.
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    overlap = sum(1 for term in small if term in large)
    if overlap == 0:
        return 0.0
    return overlap / math.sqrt(len(a) * len(b))


def cosine_sparse(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity between two sparse weighted vectors."""
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = sum(weight * large.get(term, 0.0) for term, weight in small.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(weight * weight for weight in a.values()))
    norm_b = math.sqrt(sum(weight * weight for weight in b.values()))
    return dot / (norm_a * norm_b)


def add_into(target: TermVector, source: Mapping[str, float],
             scale: float = 1.0) -> None:
    """In-place ``target += scale * source`` (profile accumulation)."""
    for term, weight in source.items():
        target[term] = target.get(term, 0.0) + scale * weight
