"""Bounded memo caches for the hot text pipeline.

Every protected search runs tokenize → Porter-stem → vectorize at
least twice (the semantic assessor and the linkability assessor), and
the SimAttack adversary, the engine indexer and the baselines all
re-run the same pipeline over the same short query strings. Real query
workloads are heavily repetitive (the AOL trace repeats queries within
and across users), so a small LRU memo in front of the pipeline turns
most of that work into dictionary lookups.

This module is the infrastructure half of the memoized text stack:

- :class:`LruCache` — a bounded, insertion-ordered memo with hit /
  miss / eviction counters. Instances self-register in a module-level
  registry so the stats of every text cache (plus the ``lru_cache`` on
  :func:`repro.text.stem.porter_stem`) can be inspected in one call.
- :func:`cache_stats` — a plain-dict snapshot of every cache.
- :func:`publish_metrics` / :func:`install_metrics` — export those
  counters as gauges through a :class:`repro.obs.metrics.MetricsRegistry`.

The *wiring* half lives in :mod:`repro.text.vectorize` (the
query → binary-vector cache) and :mod:`repro.text.tokenize` (the
query → stemmed-token cache): the caches themselves import nothing
from the rest of the text stack, so there are no import cycles.

Design rules (the same ones :mod:`repro.obs` follows):

- **Everything bounded.** Both query caches default to
  :data:`DEFAULT_QUERY_CACHE_SIZE` entries; the stem cache is a
  ``functools.lru_cache``. Nothing grows without limit.
- **Zero obs coupling on the hot path.** Cache bookkeeping is three
  plain integer attributes; nothing here reads ``OBS.enabled`` or
  touches a registry. Exporting is pull-based: a snapshot consumer
  calls :func:`install_metrics` once and the registry's collector hook
  refreshes the gauges at collect time. With observability disabled
  the caches cost exactly their dictionary operations.
- **Cached values are immutable.** ``frozenset`` vectors and ``tuple``
  token lists are shared between callers without copying.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

#: Default bound of the per-query memo caches (distinct query strings).
DEFAULT_QUERY_CACHE_SIZE = 8192

#: Bound of the ``lru_cache`` wrapping ``porter_stem`` (distinct words —
#: far fewer than distinct queries, but each is re-seen far more often).
STEM_CACHE_SIZE = 32768

#: name -> LruCache; every instance registers itself at construction.
_CACHES: Dict[str, "LruCache"] = {}


class LruCache:
    """A bounded least-recently-used memo with hit/miss/eviction counts.

    Deliberately minimal: ``lookup`` raises ``KeyError`` on a miss so
    the caller computes and ``store``s the value — keeping the compute
    function out of the cache avoids import cycles and lets one cache
    serve several call shapes (keyed by whatever tuple the caller
    builds).
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, name: str, maxsize: int = DEFAULT_QUERY_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        _CACHES[name] = self

    def lookup(self, key: Hashable) -> Any:
        """Return the cached value for *key*, refreshing its recency.
        Raises ``KeyError`` (and counts a miss) when absent."""
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            raise
        data.move_to_end(key)
        self.hits += 1
        return value

    def store(self, key: Hashable, value: Any) -> Any:
        """Insert *key* → *value*, evicting the least recent entry when
        full. Returns *value* so callers can ``return cache.store(...)``."""
        data = self._data
        if key not in data and len(data) >= self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value
        data.move_to_end(key)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are retained — they are lifetime
        totals, like every obs counter)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


def all_caches() -> Dict[str, LruCache]:
    """The registered :class:`LruCache` instances, by name."""
    return dict(_CACHES)


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Stats of every text cache, including the ``porter_stem``
    ``lru_cache`` (reported under the name ``porter_stem``)."""
    out = {name: cache.stats() for name, cache in sorted(_CACHES.items())}
    from repro.text.stem import porter_stem

    info = porter_stem.cache_info()
    out["porter_stem"] = {
        "hits": info.hits,
        "misses": info.misses,
        # Every miss inserts one entry, so whatever is no longer
        # resident was evicted.
        "evictions": info.misses - info.currsize,
        "size": info.currsize,
        "maxsize": info.maxsize or 0,
    }
    return out


def clear_caches() -> None:
    """Empty every text cache (query memos and the stem cache). Used by
    benchmarks to measure the cold path; correctness never requires it —
    the cached functions are pure."""
    for cache in _CACHES.values():
        cache.clear()
    from repro.text.stem import porter_stem

    porter_stem.cache_clear()


# -- repro.obs export ---------------------------------------------------

_GAUGE_HELP = {
    "hits": "text-pipeline cache hits (lifetime)",
    "misses": "text-pipeline cache misses (lifetime)",
    "evictions": "text-pipeline cache evictions (lifetime)",
    "size": "text-pipeline cache resident entries",
    "maxsize": "text-pipeline cache capacity bound",
}


def publish_metrics(registry) -> None:
    """Set one ``cyclosa_text_cache_<stat>`` gauge per cache/stat pair
    on *registry* (a :class:`repro.obs.metrics.MetricsRegistry`).

    Gauges (not counters) because this is a pull-time sync of lifetime
    totals: ``set`` is idempotent, so publishing into a freshly reset
    registry is always correct.
    """
    for name, stats in cache_stats().items():
        for stat, value in stats.items():
            registry.gauge(f"cyclosa_text_cache_{stat}",
                           _GAUGE_HELP[stat], cache=name).set(value)


def install_metrics(registry) -> None:
    """Register :func:`publish_metrics` as a collector on *registry*:
    every ``registry.collect()`` (and therefore every Prometheus
    snapshot) refreshes the cache gauges first."""
    registry.register_collector(publish_metrics)
