"""The Porter stemming algorithm (Porter, 1980), from scratch.

Stemming collapses morphological variants ("searching", "searches",
"searched" → "search") so that user profiles and query vectors match on
word roots. This is a faithful implementation of the original five-step
algorithm; the test suite pins it against the classic published
examples ("caresses" → "caress", "ponies" → "poni", "relational" →
"relat", ...).
"""

from __future__ import annotations

from functools import lru_cache

from repro.text.cache import STEM_CACHE_SIZE

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    m = 0
    previous_was_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_was_vowel:
            m += 1
        previous_was_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (len(word) >= 2 and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1))


def _ends_cvc(word: str) -> bool:
    """*o: stem ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (_is_consonant(word, len(word) - 3)
            and not _is_consonant(word, len(word) - 2)
            and _is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy")


def _replace_suffix(word: str, suffix: str, replacement: str,
                    min_measure: int) -> str | None:
    """If *word* ends with *suffix* and the remaining stem has
    m > *min_measure*, return the rewritten word; else None."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: stop searching


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rule_list(word: str, rules) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if (word.endswith("ll") and _measure(word[:-1]) > 1):
        return word[:-1]
    return word


@lru_cache(maxsize=STEM_CACHE_SIZE)
def porter_stem(word: str) -> str:
    """Return the Porter stem of *word* (expected lowercase).

    Memoized: stemming is pure and query vocabularies are small and
    repetitive, so an ``lru_cache`` turns the five-step rewrite into a
    dictionary hit on the warm path. Stats surface through
    :func:`repro.text.cache.cache_stats` (name ``porter_stem``).
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rule_list(word, _STEP2_RULES)
    word = _apply_rule_list(word, _STEP3_RULES)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
