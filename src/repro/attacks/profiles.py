"""Adversary priors: user profiles from past queries.

§VII-E: "we assume an adversary that intercepts queries arriving to the
search engine, and that has prior knowledge about each user in the form
of a user profile containing user's past queries" — the training split
of the log. A profile is the list of the user's past queries as binary
(stemmed) term vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.datasets.aol import SyntheticAolLog
from repro.text.vectorize import query_vector


@dataclass
class UserProfile:
    """One user's prior: their past queries as term vectors."""

    user_id: str
    query_vectors: List[FrozenSet[str]] = field(default_factory=list)

    def add_query(self, text: str) -> None:
        vector = query_vector(text)
        if vector:
            self.query_vectors.append(vector)

    def __len__(self) -> int:
        return len(self.query_vectors)


def build_profiles(training_log: SyntheticAolLog) -> Dict[str, UserProfile]:
    """Build the full prior from a training split."""
    profiles: Dict[str, UserProfile] = {}
    for record in training_log.records:
        profile = profiles.get(record.user_id)
        if profile is None:
            profile = profiles[record.user_id] = UserProfile(record.user_id)
        profile.add_query(record.text)
    return profiles
