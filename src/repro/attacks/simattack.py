"""SimAttack: similarity-based user re-identification (Petit et al.).

§VII-E: "SimAttack measures the similarity between a query q and a user
profile P_u ... accounts the cosine similarity of q and all queries
part of the user profile P_u, and returns the exponential smoothing of
all these similarities ranked in ascending order. ... If the metric is
higher than 0.5 ... and if only one user profile has the highest
similarities, SimAttack returns the association between that user
profile and the query q."

Four variants, one per protection model (§VIII-A):

- :meth:`SimAttack.attribute`        — anonymous single queries
  (TOR, CYCLOSA): map the query to a user, or None.
- :meth:`SimAttack.classify_real`    — identified traffic with fakes
  (TrackMeNot): decide whether a query from a *known* user is real.
- :meth:`SimAttack.pick_real_identified` — identified OR-groups
  (GooPIR): pick the sub-query most similar to the known user.
- :meth:`SimAttack.pick_real_anonymous`  — anonymous OR-groups
  (PEAS, X-Search): jointly pick (sub-query, user).

Implementation note: the smoothed aggregate of ranked-ascending
similarities equals ``Σ_i α(1-α)^i · v_desc[i]`` (plus a vanishing term
for the very first element), so only the *non-zero* cosines matter. An
inverted index from terms to profile queries makes each attribution
linear in the number of profile queries sharing a term with q, rather
than in the total corpus — this is what makes the 30 k-query Fig 5 runs
tractable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.profiles import UserProfile
from repro.text.vectorize import query_vector

_WEIGHT_CUTOFF = 1e-9  # contributions below this are numerically dead


class SimAttack:
    """The adversary: profiles + the similarity metric."""

    def __init__(self, profiles: Dict[str, UserProfile],
                 alpha: float = 0.5, threshold: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.threshold = threshold
        self.profiles = profiles
        # term -> list of (user_id, profile query length) — enough to
        # recompute cosines from overlap counts.
        self._postings: Dict[str, List[Tuple[str, int, int]]] = {}
        self._profile_sizes: Dict[str, int] = {}
        for user_id, profile in profiles.items():
            self._profile_sizes[user_id] = len(profile.query_vectors)
            for query_index, vector in enumerate(profile.query_vectors):
                for term in vector:
                    self._postings.setdefault(term, []).append(
                        (user_id, query_index, len(vector)))

    # -- the core metric ---------------------------------------------------

    def similarity(self, query_text: str, user_id: str) -> float:
        """Smoothed ranked similarity of one query against one profile."""
        vector = query_vector(query_text)
        profile = self.profiles.get(user_id)
        if not vector or profile is None or not profile.query_vectors:
            return 0.0
        overlaps: Dict[int, int] = {}
        for term in vector:
            for posting_user, query_index, _size in self._postings.get(term, ()):
                if posting_user == user_id:
                    overlaps[query_index] = overlaps.get(query_index, 0) + 1
        sims = [
            count / math.sqrt(len(vector) * len(profile.query_vectors[qi]))
            for qi, count in overlaps.items()
        ]
        return self._smooth(sims, len(profile.query_vectors))

    def _smooth(self, nonzero_sims: List[float], total_count: int) -> float:
        """Exponential smoothing of the full ranked-ascending list,
        computed from the non-zero entries only.

        The recurrence ``s = α·v + (1-α)·s`` over the ascending list
        (seeded with the first element) expands to weights
        ``α(1-α)^i`` from the top — except the very first (smallest)
        element, whose weight is ``(1-α)^(n-1)``. Leading zeros
        contribute nothing, so only the non-zero tail matters; when
        there are *no* zeros, the smallest non-zero carries the
        first-element weight. This reproduces the naive computation
        exactly at a fraction of the cost.
        """
        if not nonzero_sims or total_count <= 0:
            return 0.0
        nonzero_sims.sort(reverse=True)
        has_zeros = len(nonzero_sims) < total_count
        smoothed = 0.0
        weight = self.alpha
        for position, value in enumerate(nonzero_sims):
            is_last = position == len(nonzero_sims) - 1
            if is_last and not has_zeros:
                # First element of the ascending list: seed weight.
                smoothed += (weight / self.alpha) * value
            else:
                smoothed += weight * value
            weight *= 1.0 - self.alpha
            if weight < _WEIGHT_CUTOFF:
                break
        return min(1.0, smoothed)

    def _scores_for_all_users(self, query_text: str) -> Dict[str, float]:
        """Smoothed score against every profile, via the inverted index."""
        vector = query_vector(query_text)
        if not vector:
            return {}
        per_user_overlaps: Dict[str, Dict[int, int]] = {}
        per_user_sizes: Dict[Tuple[str, int], int] = {}
        for term in vector:
            for user_id, query_index, size in self._postings.get(term, ()):
                bucket = per_user_overlaps.setdefault(user_id, {})
                bucket[query_index] = bucket.get(query_index, 0) + 1
                per_user_sizes[(user_id, query_index)] = size
        scores: Dict[str, float] = {}
        qlen = len(vector)
        for user_id, overlaps in per_user_overlaps.items():
            sims = [
                count / math.sqrt(qlen * per_user_sizes[(user_id, qi)])
                for qi, count in overlaps.items()
            ]
            scores[user_id] = self._smooth(
                sims, self._profile_sizes.get(user_id, len(sims)))
        return scores

    # -- variant 1: anonymous single queries (TOR, CYCLOSA) ----------------

    def attribute(self, query_text: str) -> Optional[str]:
        """Map an anonymous query to a user, or None when uncertain.

        Returns the argmax profile iff its score clears the threshold
        and the maximum is unique.
        """
        scores = self._scores_for_all_users(query_text)
        if not scores:
            return None
        best = max(scores.values())
        if best < self.threshold:
            return None
        winners = [u for u, s in scores.items() if s == best]
        if len(winners) != 1:
            return None
        return winners[0]

    # -- variant 2: identified traffic with fakes (TrackMeNot) ---------------

    def classify_real(self, query_text: str, user_id: str) -> bool:
        """Decide whether a query from a known user is one of their real
        queries (True) or extension noise (False)."""
        return self.similarity(query_text, user_id) >= self.threshold

    # -- variant 3: identified OR-groups (GooPIR) ----------------------------

    def pick_real_identified(self, subqueries: Sequence[str],
                             user_id: str) -> int:
        """Pick the sub-query most similar to the known user's profile.
        Ties break towards the lowest index (deterministic)."""
        best_index = 0
        best_score = -1.0
        for index, subquery in enumerate(subqueries):
            score = self.similarity(subquery, user_id)
            if score > best_score:
                best_score = score
                best_index = index
        return best_index

    # -- variant 4: anonymous OR-groups (PEAS, X-Search) ---------------------

    def pick_real_anonymous(self, subqueries: Sequence[str]
                            ) -> Tuple[int, Optional[str]]:
        """Jointly pick the (sub-query, user) pair with the highest
        profile similarity. Returns ``(index, user)``; user is None if
        nothing clears the threshold."""
        best: Tuple[float, int, Optional[str]] = (-1.0, 0, None)
        for index, subquery in enumerate(subqueries):
            scores = self._scores_for_all_users(subquery)
            if not scores:
                continue
            user = max(scores, key=lambda u: scores[u])
            score = scores[user]
            if score > best[0]:
                best = (score, index, user)
        score, index, user = best
        if score < self.threshold:
            return index, None
        return index, user
