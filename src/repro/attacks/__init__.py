"""User re-identification attacks.

- :mod:`repro.attacks.profiles`  — the adversary's prior: per-user
  profiles built from the training split (§VII-B: 2/3 of each user's
  queries).
- :mod:`repro.attacks.simattack` — SimAttack (Petit et al., JISA 2016),
  the attack the paper uses for every Fig 5 bar, in all four variants
  (identified, group-identified, group-anonymous, anonymous-single).
"""

from repro.attacks.profiles import UserProfile, build_profiles
from repro.attacks.simattack import SimAttack

__all__ = ["UserProfile", "build_profiles", "SimAttack"]
