"""Traffic-analysis metrics: size-based distinguishability.

§IV argues that in PEAS/X-Search "an adversary can infer whether an
outgoing message is a real query or an obfuscated one from the request
size", while CYCLOSA's per-query records are uniform. These helpers
quantify that claim for any two populations of wire sizes:

- :func:`ks_statistic` — the two-sample Kolmogorov-Smirnov distance
  between the size distributions (0 = indistinguishable, 1 = perfectly
  separable).
- :func:`size_advantage` — the best single-threshold classifier's
  advantage over guessing, i.e. the operational risk of the leak.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def ks_statistic(sizes_a: Sequence[int], sizes_b: Sequence[int]) -> float:
    """Two-sample KS distance between two size populations.

    Equal to the best single-threshold classifier's advantage (the KS
    distance *is* the supremum of |CDF_a(t) - CDF_b(t)| over t).
    """
    advantage, _threshold = size_advantage(sizes_a, sizes_b)
    return advantage


def size_advantage(sizes_a: Sequence[int], sizes_b: Sequence[int]
                   ) -> Tuple[float, int]:
    """The best threshold classifier's advantage and its threshold.

    Returns ``(advantage, threshold)`` where advantage ∈ [0, 1] is
    ``|P(a ≤ t) - P(b ≤ t)|`` maximised over thresholds t — 0 means a
    size-observing adversary does no better than a coin flip.
    """
    if not sizes_a or not sizes_b:
        raise ValueError("both populations must be non-empty")
    candidates = sorted(set(sizes_a) | set(sizes_b))
    best_advantage = 0.0
    best_threshold = candidates[0]
    for threshold in candidates:
        p_a = sum(1 for s in sizes_a if s <= threshold) / len(sizes_a)
        p_b = sum(1 for s in sizes_b if s <= threshold) / len(sizes_b)
        advantage = abs(p_a - p_b)
        if advantage > best_advantage:
            best_advantage = advantage
            best_threshold = threshold
    return best_advantage, best_threshold
