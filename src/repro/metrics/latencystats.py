"""Latency statistics: medians, percentiles, CDF points.

Figures 8a and 8b are CDFs of end-to-end latency; Fig 8c plots median
latency against offered throughput. These helpers turn raw sample
lists into the numbers the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) by linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    # This form is exact (no float overshoot) when both endpoints match.
    return ordered[low] + fraction * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class LatencySummary:
    """The summary row the benches print per configuration."""

    count: int
    median: float
    p90: float
    p99: float
    mean: float
    maximum: float

    def row(self) -> str:
        return (f"n={self.count:5d}  median={self.median:8.3f}s  "
                f"p90={self.p90:8.3f}s  p99={self.p99:8.3f}s  "
                f"mean={self.mean:8.3f}s  max={self.maximum:8.3f}s")


def summarize(samples: Sequence[float]) -> LatencySummary:
    """Summary statistics of a latency sample set."""
    if not samples:
        raise ValueError("no samples")
    return LatencySummary(
        count=len(samples),
        median=percentile(samples, 0.5),
        p90=percentile(samples, 0.9),
        p99=percentile(samples, 0.99),
        mean=sum(samples) / len(samples),
        maximum=max(samples),
    )


def cdf_points(samples: Sequence[float],
               points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
               ) -> List[Tuple[float, float]]:
    """(quantile, latency) pairs — the series a CDF plot would draw."""
    return [(q, percentile(samples, q)) for q in points]
