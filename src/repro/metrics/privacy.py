"""Privacy metric: the re-identification success rate (Fig 5).

One function evaluates any system's engine-side observations against a
:class:`~repro.attacks.simattack.SimAttack` instance, playing the game
that matches the system's :class:`~repro.baselines.base.AttackSurface`:

- **IDENTIFIED** (Direct, TrackMeNot): the engine knows the user; the
  attacker's job is retrieving the user's real queries from the fake
  ones. Rate = correctly-recognised real queries / real queries.
- **GROUP_IDENTIFIED** (GooPIR): one OR-group per query from a known
  user; the attacker picks the real sub-query. Rate = groups where the
  pick is the real sub-query / groups.
- **GROUP_ANONYMOUS** (PEAS, X-Search): anonymous OR-groups; the
  attacker must pick the real sub-query *and* name the user. Rate =
  groups fully re-identified / groups.
- **ANONYMOUS_SINGLE** (TOR, CYCLOSA): individually arriving anonymous
  queries, real and fake indistinguishable; the attacker attributes
  each arriving query. A success is an arriving query that *is* real
  and is attributed to its true user. Rate = successes / arriving
  queries. With k = 0 (TOR) this reduces to per-real-query accuracy —
  which is why the paper notes TOR's bar "also represents the
  re-identification rate of PEAS, X-SEARCH and CYCLOSA with k = 0";
  with k fakes per real query the attacker's haystack grows by k+1×,
  which is precisely CYCLOSA's confusion argument (§VIII-A).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.attacks.simattack import SimAttack
from repro.baselines.base import AttackSurface, EngineObservation


def reidentification_rate(attack: SimAttack,
                          observations: Iterable[EngineObservation],
                          surface: AttackSurface) -> float:
    """Play the matching game over *observations*; return the rate."""
    observations = list(observations)
    if not observations:
        return 0.0
    if surface is AttackSurface.IDENTIFIED:
        return _identified(attack, observations)
    if surface is AttackSurface.GROUP_IDENTIFIED:
        return _group_identified(attack, observations)
    if surface is AttackSurface.GROUP_ANONYMOUS:
        return _group_anonymous(attack, observations)
    if surface is AttackSurface.ANONYMOUS_SINGLE:
        return _anonymous_single(attack, observations)
    raise ValueError(f"unknown attack surface {surface!r}")


def _identified(attack: SimAttack,
                observations: List[EngineObservation]) -> float:
    real = [obs for obs in observations if not obs.is_fake]
    if not real:
        return 0.0
    recognised = sum(
        1 for obs in real if attack.classify_real(obs.text, obs.identity))
    return recognised / len(real)


def _group_identified(attack: SimAttack,
                      observations: List[EngineObservation]) -> float:
    groups = [obs for obs in observations if obs.real_index is not None]
    if not groups:
        return 0.0
    successes = 0
    for obs in groups:
        picked = attack.pick_real_identified(obs.subqueries(), obs.identity)
        if picked == obs.real_index:
            successes += 1
    return successes / len(groups)


def _group_anonymous(attack: SimAttack,
                     observations: List[EngineObservation]) -> float:
    groups = [obs for obs in observations if obs.real_index is not None]
    if not groups:
        return 0.0
    successes = 0
    for obs in groups:
        index, user = attack.pick_real_anonymous(obs.subqueries())
        if index == obs.real_index and user == obs.true_user:
            successes += 1
    return successes / len(groups)


def _anonymous_single(attack: SimAttack,
                      observations: List[EngineObservation]) -> float:
    successes = 0
    for obs in observations:
        attributed = attack.attribute(obs.text)
        if attributed is not None and not obs.is_fake \
                and attributed == obs.true_user:
            successes += 1
    return successes / len(observations)


def per_user_exposure(attack: SimAttack,
                      observations: Iterable[EngineObservation]
                      ) -> "dict[str, float]":
    """Per-user breakdown of the anonymous-single game.

    §VII-B motivates studying "the most active users ... the ones that
    exposed the most information through their past queries, which
    makes them also the most difficult to protect". This returns, for
    each user, the fraction of their *real* queries the attacker
    correctly attributed — the per-user residual risk under any
    unlinkability system.
    """
    real_counts: "dict[str, int]" = {}
    hit_counts: "dict[str, int]" = {}
    for obs in observations:
        if obs.is_fake:
            continue
        real_counts[obs.true_user] = real_counts.get(obs.true_user, 0) + 1
        if attack.attribute(obs.text) == obs.true_user:
            hit_counts[obs.true_user] = hit_counts.get(obs.true_user, 0) + 1
    return {
        user: hit_counts.get(user, 0) / count
        for user, count in real_counts.items()
    }
