"""Accuracy metrics.

Fig 6 (§VII-F): for one query, ``Ror`` is the engine's answer to the
original query and ``Rxs`` what the protection system returned to the
user; then::

    Correctness  = |Ror ∩ Rxs| / |Rxs|
    Completeness = |Ror ∩ Rxs| / |Ror|

Table II (§VII-D): the sensitivity categorizer's precision/recall over
ground-truth labels::

    Recall    = |Qm ∩ Qs| / |Qs|
    Precision = |Qm ∩ Qs| / |Qm|
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True)
class AccuracyScore:
    """Correctness/completeness pair, each in [0, 1]."""

    correctness: float
    completeness: float

    @property
    def perfect(self) -> bool:
        return self.correctness == 1.0 and self.completeness == 1.0


def correctness_completeness(reference: Sequence[str],
                             returned: Sequence[str]) -> AccuracyScore:
    """Score one query's returned results against the reference answer.

    Conventions for empty sets: if the reference is empty the query has
    no right answer — completeness is 1.0 and correctness is 1.0 only
    when nothing was returned. If the system returned nothing while the
    reference exists, correctness is vacuously 1.0 (nothing wrong was
    shown) and completeness 0.0.
    """
    reference_set = set(reference)
    returned_set = set(returned)
    intersection = len(reference_set & returned_set)
    if not returned_set:
        correctness = 1.0
    else:
        correctness = intersection / len(returned_set)
    if not reference_set:
        completeness = 1.0
    else:
        completeness = intersection / len(reference_set)
    return AccuracyScore(correctness=correctness, completeness=completeness)


def mean_accuracy(scores: Iterable[AccuracyScore]) -> AccuracyScore:
    """Average of per-query scores (what Fig 6 plots)."""
    scores = list(scores)
    if not scores:
        return AccuracyScore(correctness=0.0, completeness=0.0)
    return AccuracyScore(
        correctness=sum(s.correctness for s in scores) / len(scores),
        completeness=sum(s.completeness for s in scores) / len(scores),
    )


def precision_recall(predicted: Iterable[bool],
                     actual: Iterable[bool]) -> Tuple[float, float]:
    """Precision and recall of a binary classifier over aligned labels.

    Returns ``(precision, recall)``. Precision is 1.0 when nothing was
    predicted positive (no false alarms); recall is 1.0 when nothing
    was actually positive.
    """
    predicted = list(predicted)
    actual = list(actual)
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must align")
    true_positive = sum(1 for p, a in zip(predicted, actual) if p and a)
    predicted_positive = sum(predicted)
    actual_positive = sum(actual)
    precision = (true_positive / predicted_positive
                 if predicted_positive else 1.0)
    recall = (true_positive / actual_positive
              if actual_positive else 1.0)
    return precision, recall
