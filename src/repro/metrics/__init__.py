"""Evaluation metrics.

- :mod:`repro.metrics.privacy`      — re-identification success rate
  under each SimAttack variant (Fig 5).
- :mod:`repro.metrics.accuracy`     — correctness/completeness of
  returned results (Fig 6) and precision/recall of the sensitivity
  categorizer (Table II).
- :mod:`repro.metrics.latencystats` — CDFs, medians and percentiles for
  the latency/throughput figures (Figs 8a-8c).
"""

from repro.metrics.accuracy import (
    AccuracyScore,
    correctness_completeness,
    precision_recall,
)
from repro.metrics.latencystats import LatencySummary, cdf_points, summarize
from repro.metrics.privacy import reidentification_rate

__all__ = [
    "AccuracyScore",
    "correctness_completeness",
    "precision_recall",
    "LatencySummary",
    "cdf_points",
    "summarize",
    "reidentification_rate",
]
