"""Setuptools shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``bdist_wheel``) fail; keeping a ``setup.py`` lets ``pip install -e .``
fall back to the legacy ``develop`` path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
