"""Bench: the §IV traffic-analysis contrast, quantified."""

from benchmarks.conftest import single_run
from repro.experiments.traffic_analysis import run


def test_bench_traffic_size_leak(benchmark, report):
    rows = single_run(benchmark, run, num_users=40, mean_queries=50.0,
                      k=3, seed=0, max_queries=300)
    lines = ["", "== Traffic analysis — size-threshold adversary (§IV) =="]
    for row in rows:
        lines.append(f"{row['system']:<30} advantage "
                     f"{row['advantage'] * 100:5.1f} %  "
                     f"(distinct real sizes: {row['real_sizes']})")
    report("\n".join(lines))

    by_system = {row["system"].split(" ")[0]: row for row in rows}
    # CYCLOSA's padded envelope: zero size signal, one wire size.
    assert by_system["CYCLOSA"]["advantage"] < 0.02
    assert by_system["CYCLOSA"]["real_sizes"] == 1
    # X-Search's OR groups: nearly perfectly separable by size.
    assert by_system["X-Search"]["advantage"] > 0.9
    # TrackMeNot sits in between (plain text, different shapes).
    assert (by_system["CYCLOSA"]["advantage"]
            < by_system["TrackMeNot"]["advantage"]
            < by_system["X-Search"]["advantage"])
