"""Fig 8b: impact of k on CYCLOSA's observed latency."""

from benchmarks.conftest import single_run
from repro.experiments.fig8b_k_latency import run
from repro.metrics.latencystats import summarize


def test_bench_fig8b_k_sweep(benchmark, report):
    samples = single_run(benchmark, run, k_values=(0, 1, 3, 5, 7),
                         num_queries=60, seed=0, num_nodes=16,
                         num_users=40)

    lines = ["", "== Fig 8b — impact of k on observed latency =="]
    lines.append(f"{'k':<4} {'median':<10} {'p90':<10} {'max'}")
    medians = {}
    maxima = {}
    for k, latencies in samples.items():
        summary = summarize(latencies)
        medians[k] = summary.median
        maxima[k] = summary.maximum
        lines.append(f"{k:<4} {summary.median:<10.3f} {summary.p90:<10.3f} "
                     f"{summary.maximum:.3f}")
    lines.append("(paper: median(k=3)=0.876 s, median(k=7)=1.226 s, "
                 "worst case < 1.5 s)")
    report("\n".join(lines))

    # Latency grows with k, but stays bounded.
    assert medians[7] > medians[0]
    assert medians[7] > medians[3]
    # Doubling the fakes (3 -> 7) costs well under 2x latency.
    assert medians[7] < 2 * medians[3]
    # Paper: even k=7's worst case stays below ~1.5 s.
    assert maxima[7] < 2.5
    assert 0.6 < medians[3] < 1.2  # paper 0.876
