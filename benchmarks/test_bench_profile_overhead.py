"""Disabled-profiler overhead on the CYCLOSA hot path.

The deterministic profiler's design contract is stronger than the
observability guard's: when no profile run is active there is *no*
instrumentation at all — ``sys.setprofile`` hooks are installed by
``DeterministicProfiler.start()`` and removed by ``stop()``, and the
interpreter only dispatches profile events while a hook is installed.
So "disabled overhead" here means: after a start/stop cycle, the hot
path must run at native speed again — no residual hook, no lingering
per-call cost.

Measured as min-of-repeats over a tight call loop (min is robust to
scheduler noise where the mean is not):

1. pristine per-call cost, before any profiler existed;
2. per-call cost after a full ``start()``/``stop()`` cycle — asserted
   within 5 % of pristine;
3. per-call cost *while sampling* — reported for context (this one is
   allowed to be expensive; profiling is opt-in and offline).
"""

from __future__ import annotations

import sys
import time

from benchmarks.conftest import single_run
from repro import obs

OVERHEAD_BUDGET = 0.05  # residual cost after stop(), vs pristine

CALLS_PER_LOOP = 200_000
REPEATS = 9


def _work(value: int) -> int:
    return value + 1


def _per_call_seconds() -> float:
    """Min-of-repeats cost of one trivial call on this machine."""
    best = float("inf")
    for _ in range(REPEATS):
        accumulator = 0
        begin = time.perf_counter()
        for _ in range(CALLS_PER_LOOP):
            accumulator = _work(accumulator)
        elapsed = time.perf_counter() - begin
        assert accumulator == CALLS_PER_LOOP
        best = min(best, elapsed)
    return best / CALLS_PER_LOOP


def test_bench_profiler_disabled_overhead(benchmark, report):
    assert sys.getprofile() is None, "a profile hook is already installed"

    def measure():
        pristine = _per_call_seconds()

        profiler = obs.DeterministicProfiler(sample_interval=64)
        with profiler:
            sampling = _per_call_seconds()
        assert sys.getprofile() is None, "stop() left the hook installed"

        after = _per_call_seconds()
        return pristine, sampling, after

    pristine, sampling, after = single_run(benchmark, measure)

    ratio = after / pristine
    report("\n".join([
        "",
        "== Profiler overhead (after stop vs never started) ==",
        f"pristine per-call cost       : {pristine * 1e9:.1f} ns",
        f"after start/stop cycle       : {after * 1e9:.1f} ns",
        f"residual ratio               : {ratio:.4f}x  "
        f"(budget {1 + OVERHEAD_BUDGET:.2f}x)",
        f"while sampling (interval 64) : {sampling * 1e9:.1f} ns  "
        f"({sampling / pristine:.2f}x, opt-in only)",
    ]))

    assert ratio < 1 + OVERHEAD_BUDGET
