"""Fig 8a: end-to-end latency CDFs (Direct / X-Search / CYCLOSA / TOR)."""

from benchmarks.conftest import single_run
from repro.experiments.fig8a_latency import PAPER_MEDIANS, run
from repro.metrics.latencystats import cdf_points, summarize


def test_bench_fig8a_latency_cdf(benchmark, report):
    samples = single_run(benchmark, run, num_queries=120, k=3, seed=0,
                         num_users=40)

    lines = ["", "== Fig 8a — end-to-end latency, k=3 =="]
    lines.append(f"{'System':<10} {'median':<10} {'(paper)':<10} "
                 f"{'p90':<10} {'p99'}")
    for name, latencies in samples.items():
        summary = summarize(latencies)
        lines.append(f"{name:<10} {summary.median:<10.3f} "
                     f"{PAPER_MEDIANS[name]:<10.3f} {summary.p90:<10.3f} "
                     f"{summary.p99:.3f}")
    for name, latencies in samples.items():
        series = "  ".join(f"{q:.2f}:{v:.2f}s"
                           for q, v in cdf_points(latencies))
        lines.append(f"{name} CDF: {series}")
    report("\n".join(lines))

    medians = {name: summarize(latencies).median
               for name, latencies in samples.items()}
    # Ordering: Direct < X-Search < CYCLOSA << TOR.
    assert medians["Direct"] < medians["X-Search"]
    assert medians["X-Search"] < medians["CYCLOSA"]
    assert medians["CYCLOSA"] < 2.0          # sub-second-ish (paper 0.876)
    assert medians["TOR"] > 10 * medians["CYCLOSA"]  # paper: 13x on average
    # Magnitudes near the paper's medians.
    assert 0.4 < medians["X-Search"] < 0.8   # paper 0.577
    assert 0.6 < medians["CYCLOSA"] < 1.2    # paper 0.876
    assert 30.0 < medians["TOR"] < 120.0     # paper 62.28
