"""Fig 5: re-identification rates across all six systems (k = 7)."""

import pytest

from benchmarks.conftest import single_run
from repro.experiments.fig5_reidentification import (
    PAPER_RATES,
    run,
    run_k_sweep,
)


def test_bench_fig5_reidentification(benchmark, report):
    rates = single_run(benchmark, run, num_users=80, mean_queries=80.0,
                       k=7, seed=0, max_queries=2000)

    lines = ["", "== Fig 5 — re-identification rate (lower = better) =="]
    lines.append(f"{'System':<12} {'Measured':<10} {'Paper'}")
    for name, rate in rates.items():
        lines.append(f"{name:<12} {rate * 100:>6.1f} %   "
                     f"{PAPER_RATES[name] * 100:.0f} %")
    report("\n".join(lines))

    # Orderings (who wins) — the paper's qualitative result.
    assert rates["GooPIR"] > rates["TOR"]           # fakes under own id fail
    assert rates["TrackMeNot"] > rates["TOR"]
    assert rates["TOR"] > 3 * rates["PEAS"]         # unlink+indist >> unlink
    assert rates["PEAS"] > rates["X-Search"]        # synthetic < real fakes
    assert rates["X-Search"] > rates["CYCLOSA"]     # per-path dispersal wins
    # Magnitudes near the paper's bars.
    assert 0.25 < rates["TOR"] < 0.50               # paper: 36 %
    assert rates["CYCLOSA"] < 0.08                  # paper: 4 %
    assert rates["X-Search"] < 0.15                 # paper: 6 %


def test_bench_fig5_k_sweep(benchmark, report):
    """§VIII-A: the k=0 rate equals TOR's, and fakes dilute ~1/(k+1)."""
    sweep = single_run(benchmark, run_k_sweep, k_values=(0, 1, 3, 7),
                       num_users=60, mean_queries=60.0, seed=0,
                       max_queries=1000)
    report("\n== Fig 5 follow-up — CYCLOSA rate vs k ==\n"
           + "  ".join(f"k={k}: {rate * 100:.1f} %"
                       for k, rate in sweep.items()))
    # k=0 reduces to the unprotected (TOR) regime.
    assert 0.25 < sweep[0] < 0.50
    # Monotone decay, tracking the 1/(k+1) dilution law within 35 %.
    rates = list(sweep.values())
    assert rates == sorted(rates, reverse=True)
    for k in (1, 3, 7):
        predicted = sweep[0] / (k + 1)
        assert sweep[k] == pytest.approx(predicted, rel=0.35)
