"""Chaos gate: the §VI-b failure path must stay correct under faults.

Runs the seeded :mod:`repro.faults` fault matrix at a small, fast
scale and fails (exit code 1) when any invariant breaks:

- **hung search** — a protected search that never reached a terminal
  status after the drain (the §VI-b path must terminate everything);
- **relay-disjointness violation** — a real-query retry landed on a
  relay already carrying a fake leg of the same search (§V
  one-query-per-relay);
- **success-rate floor** — a cell's query success rate fell below the
  recorded floor for this workload (graceful degradation regressed).

Run it from the repo root::

    PYTHONPATH=src python -m benchmarks.check_chaos
    PYTHONPATH=src python -m benchmarks.check_chaos --json

Everything is seeded (deployment seed, fault-plan seed), so the run —
and its ``--json`` report — is byte-for-byte reproducible; the floors
below were recorded from exactly this workload and are machine-
independent (simulated time, not wall time).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults import chaos

#: Gate workload: small but covering every cell of the default matrix.
NODES = 8
QUERIES = 4
SEED = 11
PLAN_SEED = 3

#: Recorded success-rate floor per cell for the gate workload. The
#: matrix cells at this seed all complete at 1.0 today (except the
#: always-captcha storm cell, whose point is *terminal* failure); the
#: floors leave one-query headroom so a legitimately unlucky future
#: workload tweak fails loudly only when recovery actually regressed.
FLOORS = {
    "baseline": 1.0,
    "drop-forward": 0.75,
    "drop-response": 0.75,
    "slow-relays": 0.75,
    "duplicate-storm": 0.75,
    "corrupt-forward": 0.75,
    "crash-after-receive": 0.75,
    "attest-deny": 0.75,
    "ratelimit-storm": 0.0,
    "replica-crash": 0.75,
    "combo": 0.5,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_chaos",
        description="run the seeded fault matrix and enforce the "
                    "no-hang / disjointness / success-floor invariants")
    parser.add_argument("--json", action="store_true",
                        help="dump the deterministic matrix report")
    args = parser.parse_args(argv)

    report = chaos.run_matrix(
        chaos.matrix_cells(None, plan_seed=PLAN_SEED),
        num_nodes=NODES, num_queries=QUERIES, seed=SEED)

    if args.json:
        print(chaos.report_json(report))
    else:
        print(chaos.format_report(report))

    failures: List[str] = []
    for row in report["cells"]:
        name = row["cell"]
        if row["hung_searches"]:
            failures.append(
                f"{name}: {row['hung_searches']} hung search(es) — "
                "a protected search never reached a terminal status")
        if row["disjointness_violations"]:
            failures.append(
                f"{name}: {row['disjointness_violations']} relay-"
                "disjointness violation(s) — a retry reused a fake-leg "
                "relay")
        floor = FLOORS.get(name)
        if floor is None:
            failures.append(
                f"{name}: no recorded floor — add it to "
                "benchmarks/check_chaos.py FLOORS")
        elif row["success_rate"] < floor:
            failures.append(
                f"{name}: success rate {row['success_rate']:.2f} fell "
                f"below the recorded floor {floor:.2f}")
    stale = sorted(set(FLOORS) - {row["cell"] for row in report["cells"]})
    if stale:
        failures.append(
            f"stale floors for unknown cells: {', '.join(stale)}")

    if failures:
        print("\nCHAOS GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nchaos gate ok: {len(report['cells'])} cells, zero hung "
          "searches, zero disjointness violations, all floors held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
