"""Benches for the extension experiments (§III/§VI-b robustness and the
§IX future-work sensitivity sweep)."""

from benchmarks.conftest import single_run
from repro.experiments.robustness import run as run_robustness
from repro.experiments.sensitivity_sweep import run as run_sweep


def test_bench_robustness_byzantine(benchmark, report):
    rows = single_run(benchmark, run_robustness,
                      num_nodes=20, queries_per_setting=25,
                      byzantine_fractions=(0.0, 0.25, 0.5), k=3, seed=0)
    lines = ["", "== Extension — Byzantine relays vs query success =="]
    for row in rows:
        lines.append(f"byzantine {row['byzantine_fraction'] * 100:3.0f} %  "
                     f"success {row['success_rate'] * 100:5.1f} %  "
                     f"retries {row['retries']:3d}  "
                     f"blacklisted {row['blacklisted']:3d}  "
                     f"median {row['median_latency']:.2f} s")
    report("\n".join(lines))

    clean, quarter, half = rows
    assert clean["success_rate"] == 1.0
    assert half["success_rate"] >= 0.9   # blacklist+retry recovers
    assert half["blacklisted"] > quarter["blacklisted"] > 0
    assert half["median_latency"] >= clean["median_latency"]


def test_bench_sensitivity_sweep(benchmark, report):
    rows = single_run(benchmark, run_sweep,
                      sensitivity_rates=(0.05, 0.1574, 0.35, 0.6),
                      num_users=40, mean_queries=50.0, kmax=7, seed=0,
                      max_queries=600)
    lines = ["", "== Extension — workload sensitivity sweep (§IX) =="]
    for row in rows:
        lines.append(f"sensitive {row['sensitive_rate'] * 100:5.1f} %  "
                     f"adaptive: re-id {row['adaptive_reid'] * 100:4.1f} % "
                     f"mean-k {row['adaptive_mean_k']:.2f}  |  "
                     f"static: re-id {row['static_reid'] * 100:4.1f} % "
                     f"mean-k {row['static_mean_k']:.2f}")
    report("\n".join(lines))

    # Adaptive cost strictly tracks the workload's sensitivity...
    mean_ks = [row["adaptive_mean_k"] for row in rows]
    assert mean_ks == sorted(mean_ks)
    # ...and always undercuts the flat static policy.
    for row in rows:
        assert row["adaptive_mean_k"] < row["static_mean_k"]
        assert row["adaptive_reid"] < 0.15
