"""Fig 7: CDF of the adaptive number of fake queries (kmax = 7)."""

from benchmarks.conftest import single_run
from repro.experiments.fig7_adaptive_k import run


def test_bench_fig7_adaptive_k(benchmark, report):
    outcome = single_run(benchmark, run, num_users=60, mean_queries=80.0,
                         kmax=7, seed=0, max_queries=3000)

    lines = ["", "== Fig 7 — CDF of the actual number of fake queries =="]
    lines.append("k    CDF")
    for k, fraction in outcome["cdf"]:
        lines.append(f"{k:<4} {fraction * 100:5.1f} %")
    lines.append(f"mean k = {outcome['mean_k']:.2f}  "
                 f"(static X-Search policy would be 7.00)")
    report("\n".join(lines))

    # Paper: ≈25 % need no fakes; ≈35 % spike at kmax; CDF jumps at 7.
    assert 0.05 < outcome["fraction_k0"] < 0.45
    assert 0.10 < outcome["fraction_kmax"] < 0.55
    # Adaptive protection sends far fewer fakes than always-kmax.
    assert outcome["mean_k"] < 0.75 * 7
    # CDF is monotone and ends at 1.
    fractions = [fraction for _, fraction in outcome["cdf"]]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
