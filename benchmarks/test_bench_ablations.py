"""Ablation benches for the design choices DESIGN.md calls out."""

from benchmarks.conftest import single_run
from repro.experiments.ablations import (
    run_adaptive_ablation,
    run_epc_ablation,
    run_fake_source_ablation,
    run_path_ablation,
)


def test_bench_ablation_adaptive_k(benchmark, report):
    """Adaptive k vs static k: privacy vs traffic cost."""
    rows = single_run(benchmark, run_adaptive_ablation,
                      num_users=50, mean_queries=60.0, kmax=7, seed=0,
                      max_queries=1000)
    lines = ["", "== Ablation — adaptive vs static k =="]
    for row in rows:
        lines.append(f"{row['configuration']:<34} "
                     f"re-id {row['reidentification'] * 100:5.1f} %  "
                     f"fakes/query {row['fakes_per_query']:.2f}")
    report("\n".join(lines))

    by_label = {row["configuration"]: row for row in rows}
    static0 = by_label["static k=0"]
    static7 = by_label["static k=7 (X-Search policy)"]
    adaptive = by_label["adaptive kmax=7 (CYCLOSA)"]
    # Static kmax gives the best privacy at full traffic cost; adaptive
    # recovers most of that privacy at roughly half the fakes.
    assert static7["reidentification"] < static0["reidentification"] / 4
    assert adaptive["reidentification"] < static0["reidentification"] / 3
    assert adaptive["fakes_per_query"] < 0.75 * static7["fakes_per_query"]


def test_bench_ablation_fake_source(benchmark, report):
    """Fake-query source: real past queries vs RSS vs dictionary."""
    rows = single_run(benchmark, run_fake_source_ablation,
                      num_users=50, mean_queries=60.0, k=7, seed=0,
                      max_queries=1000)
    lines = ["", "== Ablation — fake-query source (k=7) =="]
    for row in rows:
        lines.append(f"{row['fake_source']:<14} "
                     f"re-id {row['reidentification'] * 100:5.1f} %  "
                     f"attacker precision "
                     f"{row['attacker_precision'] * 100:5.1f} %  "
                     f"({row['attributions']} attributions)")
    report("\n".join(lines))

    by_source = {row["fake_source"]: row for row in rows}
    # Real past queries create the most confident-but-wrong attributions
    # — the attacker's precision is the worst against them.
    assert (by_source["past-queries"]["attacker_precision"]
            < by_source["rss"]["attacker_precision"])
    assert (by_source["past-queries"]["attributions"]
            > by_source["dictionary"]["attributions"])


def test_bench_ablation_paths(benchmark, report):
    """Separate per-query paths vs OR-aggregation at one proxy."""
    rows = single_run(benchmark, run_path_ablation,
                      num_users=50, mean_queries=60.0, k=3, seed=0,
                      max_queries=250)
    lines = ["", "== Ablation — separate paths vs OR-group (same fakes) =="]
    for row in rows:
        lines.append(f"{row['scheme']:<32} "
                     f"re-id {row['reidentification'] * 100:5.1f} %  "
                     f"corr {row['correctness'] * 100:5.1f} %  "
                     f"compl {row['completeness'] * 100:5.1f} %")
    report("\n".join(lines))

    separate, grouped = rows
    # Same fakes — only the dispersal differs. Separate paths keep
    # perfect accuracy; grouping loses completeness.
    assert separate["correctness"] == 1.0
    assert separate["completeness"] == 1.0
    assert grouped["completeness"] < 0.9
    # And dispersal also helps privacy (paper: 4 % vs 6 %).
    assert separate["reidentification"] <= grouped["reidentification"] + 0.02


def test_bench_ablation_epc(benchmark, report):
    """EPC working set vs relay capacity: the paging cliff."""
    rows = single_run(benchmark, run_epc_ablation,
                      working_sets_mb=[2, 64, 120, 160, 256])
    lines = ["", "== Ablation — EPC working set vs relay capacity =="]
    for row in rows:
        lines.append(f"{row['working_set_mb']:>4} MB  "
                     f"paging {row['paging_ratio']:.2f}  "
                     f"service {row['service_time_us']:8.1f} µs  "
                     f"capacity {row['capacity_req_s']:>8.0f} req/s")
    report("\n".join(lines))

    by_size = {row["working_set_mb"]: row for row in rows}
    # Under the 128 MB EPC: flat, fast, >40k req/s — the §V-F claim
    # that CYCLOSA's 1.7 MB enclave "does not suffer from EPC paging".
    assert by_size[2]["paging_ratio"] == 0.0
    assert by_size[120]["paging_ratio"] == 0.0
    assert by_size[2]["capacity_req_s"] > 40_000
    # Past the cliff: order-of-magnitude collapse.
    assert by_size[160]["capacity_req_s"] < by_size[120]["capacity_req_s"] / 4
    assert by_size[256]["capacity_req_s"] < by_size[120]["capacity_req_s"] / 8
