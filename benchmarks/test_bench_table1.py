"""Table I: the qualitative property matrix, regenerated behaviourally."""

from benchmarks.conftest import single_run
from repro.experiments.table1_properties import PROPERTIES, run


def test_bench_table1_property_matrix(benchmark, report):
    outcome = single_run(benchmark, run, num_users=40, mean_queries=50.0,
                         seed=0, sample_size=100)

    lines = ["", "== Table I — private web search mechanisms =="]
    header = f"{'System':<12}" + "".join(f"{p[:14]:<16}" for p in PROPERTIES)
    lines.append(header)
    for name, maps in outcome.items():
        measured = maps["measured"]
        row = f"{name:<12}" + "".join(
            f"{'X' if measured[p] else '-':<16}" for p in PROPERTIES)
        lines.append(row)
    report("\n".join(lines))

    # The paper's matrix, exactly.
    for name, maps in outcome.items():
        assert maps["measured"] == maps["declared"], name
    assert all(outcome["CYCLOSA"]["measured"].values())
    assert not outcome["PEAS"]["measured"]["scalability"]
    assert not outcome["X-Search"]["measured"]["accuracy"]
    assert not outcome["TOR"]["measured"]["indistinguishability"]
    assert not outcome["TrackMeNot"]["measured"]["unlinkability"]
