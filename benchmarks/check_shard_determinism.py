"""Sharded-kernel byte-identity gate.

The :class:`repro.net.simulator.ShardedSimulator` contract is that a
run's observable outcome — the merged event order, every per-node
counter, every model stat — is a pure function of the seed, never of
the shard count or the worker count. This gate re-proves that on the
churn+chaos workload (:mod:`repro.experiments.shard_scale`): it runs
the same seeded scenario at ``shards=1`` (the reference single-heap
layout) and at each sharded/forked layout, and fails (exit code 1)
the moment any layout's event-order digest, event count, or per-node
stats diverge from the reference.

This is the cheap, always-on companion to the ``shard``-marked test
suite — small enough (a few hundred nodes for a few simulated
seconds) to run on every PR next to the other gates::

    PYTHONPATH=src python -m benchmarks.check_shard_determinism
    PYTHONPATH=src python -m benchmarks.check_shard_determinism \
        --nodes 500 --duration 8 --seeds 0 1

There is no baseline file to update: the reference is computed fresh
each run, so a divergence always means a determinism bug (a shared
RNG stream, an order-dependent tie-break, a barrier-edge drift), not
a stale artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import shard_scale

#: (shards, workers) layouts compared against the shards=1 reference.
DEFAULT_LAYOUTS = ((2, 1), (4, 1), (4, 2), (8, 4))


def check_seed(seed: int, nodes: int, duration: float,
               layouts=DEFAULT_LAYOUTS) -> bool:
    """Run the reference and every layout for one seed; print a row
    per layout and return True when all of them are byte-identical."""
    reference = shard_scale.run(
        num_nodes=nodes, shards=1, workers=1, duration=duration,
        seed=seed, digest=True, collect_node_stats=True)
    print(f"seed {seed}: reference shards=1 workers=1 — "
          f"{reference['events']} events, digest "
          f"{reference['event_order_digest'][:16]}…")
    all_ok = True
    for shards, workers in layouts:
        candidate = shard_scale.run(
            num_nodes=nodes, shards=shards, workers=workers,
            duration=duration, seed=seed, digest=True,
            collect_node_stats=True)
        problems = []
        if candidate["event_order_digest"] != reference["event_order_digest"]:
            problems.append(
                f"event order digest {candidate['event_order_digest'][:16]}…")
        if candidate["events"] != reference["events"]:
            problems.append(f"event count {candidate['events']}")
        if candidate["node_stats"] != reference["node_stats"]:
            changed = sum(
                1 for address, stats in reference["node_stats"].items()
                if candidate["node_stats"].get(address) != stats)
            problems.append(f"per-node stats ({changed} node(s) differ)")
        if problems:
            all_ok = False
            print(f"  shards={shards} workers={workers}: DIVERGED — "
                  + "; ".join(problems))
        else:
            print(f"  shards={shards} workers={workers}: identical")
    return all_ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_shard_determinism",
        description="prove sharded-kernel runs are byte-identical "
                    "across shard and worker layouts")
    parser.add_argument("--nodes", type=int, default=300,
                        help="overlay size per run (default 300)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated seconds per run (default 6)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seeds to check (default: 0)")
    args = parser.parse_args(argv)

    ok = True
    for seed in args.seeds:
        ok = check_seed(seed, args.nodes, args.duration) and ok
    if not ok:
        print("\nFAIL: a sharded layout diverged from the single-heap "
              "reference — the kernel's determinism contract is broken "
              "(suspect: a shared RNG stream, an order-dependent "
              "tie-break, or barrier-edge drift)", file=sys.stderr)
        return 1
    print("\nok: every layout byte-identical to shards=1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
