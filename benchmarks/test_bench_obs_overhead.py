"""Disabled-observability overhead on the CYCLOSA hot path.

The design contract of :mod:`repro.obs` is that instrumentation costs
one attribute read (``OBS.enabled``) per potential event when disabled.
Measuring that directly by timing two whole searches is hopeless — a
search is hundreds of milliseconds of simulation work and the guards
are nanoseconds, far below run-to-run noise. Instead:

1. install a counting flag as ``OBS.enabled`` and run one search →
   the exact number of guard evaluations a search performs;
2. time a tight loop of real ``if OBS.enabled:`` guard reads → the
   per-guard cost on this machine;
3. assert guards-per-search x cost-per-guard < 5 % of the wall time of
   one search with observability disabled.
"""

from __future__ import annotations

import time

from benchmarks.conftest import single_run
from repro import obs
from repro.core.client import CyclosaNetwork

OVERHEAD_BUDGET = 0.05  # of per-search wall time


class CountingFlag:
    """Falsy object that counts how often it is truth-tested."""

    def __init__(self) -> None:
        self.evaluations = 0

    def __bool__(self) -> bool:
        self.evaluations += 1
        return False


def _guard_cost(loops: int = 200_000) -> float:
    """Seconds per ``if OBS.enabled:`` read (amortised over a loop)."""
    state = obs.OBS
    hits = 0
    begin = time.perf_counter()
    for _ in range(loops):
        if state.enabled:
            hits += 1
    elapsed = time.perf_counter() - begin
    assert hits == 0
    return elapsed / loops


def test_bench_obs_disabled_overhead(benchmark, report):
    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(num_nodes=12, seed=9)
    user = deployment.node(0)
    user.search("warmup query")  # touch every code path once

    # 1. guard evaluations per search
    flag = CountingFlag()
    obs.OBS.enabled = flag
    user.search("counted query")
    guards_per_search = flag.evaluations
    obs.OBS.enabled = False

    # 2. cost of one guard
    per_guard = _guard_cost()

    # 3. wall time of one disabled search
    def timed_search():
        begin = time.perf_counter()
        result = user.search("timed query")
        assert result.ok
        return time.perf_counter() - begin

    search_seconds = single_run(benchmark, timed_search)

    overhead = guards_per_search * per_guard
    ratio = overhead / search_seconds
    report("\n".join([
        "",
        "== Observability overhead (disabled) ==",
        f"guard evaluations per search : {guards_per_search}",
        f"cost per guard               : {per_guard * 1e9:.1f} ns",
        f"guard overhead per search    : {overhead * 1e6:.1f} us",
        f"one search (obs disabled)    : {search_seconds * 1e3:.1f} ms",
        f"overhead ratio               : {ratio * 100:.4f} %  "
        f"(budget {OVERHEAD_BUDGET * 100:.0f} %)",
    ]))

    assert guards_per_search > 0, "no instrumented call sites were hit"
    assert ratio < OVERHEAD_BUDGET


def test_bench_obs_disabled_overhead_distributed(benchmark, report):
    """Same contract over the *whole* distributed path.

    A search's guards don't stop when the result lands: the k fake
    legs are still in flight, and their relay-side forwarding,
    engine service and response wrapping — all instrumented for
    distributed tracing — run during the drain that follows. Count
    guards across search + drain so the relay/engine-side
    instrumentation added for cross-node tracing is held to the same
    <5 % disabled budget.
    """
    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(num_nodes=12, seed=9)
    user = deployment.node(0)
    drain = 60.0
    user.search("warmup query")
    deployment.run(drain)  # touch the fake-leg paths once

    flag = CountingFlag()
    obs.OBS.enabled = flag
    user.search("counted query")
    deployment.run(drain)
    guards_per_cycle = flag.evaluations
    obs.OBS.enabled = False

    per_guard = _guard_cost()

    def timed_cycle():
        begin = time.perf_counter()
        result = user.search("timed query")
        assert result.ok
        deployment.run(drain)
        return time.perf_counter() - begin

    cycle_seconds = single_run(benchmark, timed_cycle)

    overhead = guards_per_cycle * per_guard
    ratio = overhead / cycle_seconds
    report("\n".join([
        "",
        "== Observability overhead (disabled, distributed path) ==",
        f"guard evaluations per cycle  : {guards_per_cycle}",
        f"cost per guard               : {per_guard * 1e9:.1f} ns",
        f"guard overhead per cycle     : {overhead * 1e6:.1f} us",
        f"search + drain (obs off)     : {cycle_seconds * 1e3:.1f} ms",
        f"overhead ratio               : {ratio * 100:.4f} %  "
        f"(budget {OVERHEAD_BUDGET * 100:.0f} %)",
    ]))

    assert guards_per_cycle > 0, "no instrumented call sites were hit"
    assert ratio < OVERHEAD_BUDGET
