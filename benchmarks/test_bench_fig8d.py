"""Fig 8d: query protection vs users blocked by the search engine."""

from benchmarks.conftest import single_run
from repro.experiments.fig8d_ratelimit import ENGINE_LIMIT_PER_HOUR, run


def test_bench_fig8d_rate_limit(benchmark, report):
    outcome = single_run(benchmark, run, num_users=100, k=3,
                         duration_minutes=90.0, num_cyclosa_nodes=100,
                         seed=0)

    lines = ["", "== Fig 8d — engine-side load vs the rate limit =="]
    lines.append(f"limit: {outcome['limit_per_hour']}/h per identity; "
                 f"offered: {outcome['offered_per_hour']:.0f} q/h total")
    lines.append(f"{'minute':<8} {'X-S adm/h':<11} {'X-S rej/h':<11} "
                 f"{'Cycl mean/node/h':<17} {'Cycl max/node/h'}")
    for point in outcome["series"]:
        lines.append(
            f"{point['minute']:<8.0f} "
            f"{point['xsearch_admitted_per_h']:<11.0f} "
            f"{point['xsearch_rejected_per_h']:<11.0f} "
            f"{point['cyclosa_mean_per_node_h']:<17.1f} "
            f"{point['cyclosa_max_per_node_h']:.0f}")
    report("\n".join(lines))

    # X-Search exceeds the limit and gets blocked (admissions collapse).
    assert outcome["xsearch_rejected_total"] > 0
    late = outcome["series"][-1]
    assert late["xsearch_admitted_per_h"] == 0
    assert late["xsearch_rejected_per_h"] > ENGINE_LIMIT_PER_HOUR
    # CYCLOSA spreads the identical load under the limit on every node.
    assert outcome["cyclosa_rejected_total"] == 0
    for point in outcome["series"]:
        assert point["cyclosa_max_per_node_h"] < ENGINE_LIMIT_PER_HOUR
    # Paper's scale: ~100 req/h/node for k=3 ("up to 94 req/hour").
    assert 50 < late["cyclosa_mean_per_node_h"] < 250
