"""SLO gate: the flight recorder must stay deterministic and sharp.

Runs the ``repro monitor`` churn+chaos soak **twice** at the default
scale and fails (exit code 1) when any invariant breaks:

- **non-determinism** — the two same-seed runs' JSON reports are not
  byte-identical (the recorder's windows, the SLO evaluation or the
  scenario itself picked up wall-clock or unseeded state);
- **hung search** — a protected search survived the drain without a
  terminal status (the §VI-b guarantee, watched per-window here);
- **storm missed** — the ``search-success`` burn-rate monitor failed
  to alert on the injected rate-limit storm, alerted *before* the
  storm began, or kept alerting for longer than the policy's short
  range past its end (the monitor must localise the incident, not
  just notice the run was bad);
- **collateral breach** — the latency or backlog rule breached: the
  storm makes captchas, it must not make queues.

Run it from the repo root::

    PYTHONPATH=src python -m benchmarks.check_slo
    PYTHONPATH=src python -m benchmarks.check_slo --json

Everything is seeded and measured in simulated time, so both runs —
and the printed report — are machine-independent.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import monitor


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_slo",
        description="run the monitor soak twice and enforce the "
                    "determinism / no-hang / storm-localisation "
                    "invariants")
    parser.add_argument("--json", action="store_true",
                        help="dump the deterministic scenario report")
    args = parser.parse_args(argv)

    report = monitor.run_scenario()
    first = monitor.report_json(report)
    second = monitor.report_json(monitor.run_scenario())

    if args.json:
        print(first)
    else:
        print(monitor.format_dashboard(report))

    failures: List[str] = []
    if first != second:
        failures.append(
            "same-seed runs diverged: the JSON reports are not "
            "byte-identical (non-deterministic telemetry)")

    hung = report["traffic"]["hung_searches"]
    if hung:
        failures.append(
            f"{hung} hung search(es) — a protected search never "
            "reached a terminal status")

    storm_lo, storm_hi = report["scenario"]["storm"]["windows"]
    tail = monitor.default_slo_spec(
        report["scenario"]["window_seconds"]).policy.short_windows
    success = next(r for r in report["slo"]["rules"]
                   if r["rule"] == "search-success")
    if not success["alert_ranges"]:
        failures.append(
            "search-success: the burn-rate monitor never alerted on "
            f"the injected storm (windows {storm_lo}..{storm_hi})")
    for lo, hi in success["alert_ranges"]:
        if lo < storm_lo:
            failures.append(
                f"search-success: alert window {lo} precedes the storm "
                f"(starts at window {storm_lo}) — false positive")
        if hi > storm_hi + tail:
            failures.append(
                f"search-success: alert window {hi} outlasts the storm "
                f"by more than the short range ({storm_hi}+{tail})")
    if success["alert_ranges"] and not any(
            lo <= storm_hi and hi >= storm_lo
            for lo, hi in success["alert_ranges"]):
        failures.append(
            "search-success: alerts never overlap the storm windows "
            f"{storm_lo}..{storm_hi}")

    for name in ("search-latency", "backlog-bounded"):
        rule = next(r for r in report["slo"]["rules"] if r["rule"] == name)
        if rule["verdict"] != "ok":
            failures.append(
                f"{name}: breached (alerts {rule['alert_ranges']}) — "
                "the storm must cost success rate, not queues")

    if failures:
        print("\nSLO GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nslo gate ok: {len(report['windows'])} windows, "
          "byte-identical reports, zero hung searches, storm "
          f"localised to windows {storm_lo}..{storm_hi} "
          f"(alerted {success['alert_ranges']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
