"""Bench: SimAttack against the full network stack vs the analytic twin."""

from benchmarks.conftest import single_run
from repro.experiments.fullstack_privacy import run


def test_bench_fullstack_privacy_validation(benchmark, report):
    outcome = single_run(benchmark, run, num_nodes=20, num_queries=150,
                         kmax=7, seed=0)
    report(f"\n== Full-stack privacy validation ==\n"
           f"full stack: {outcome['fullstack_rate'] * 100:.1f} %  |  "
           f"analytic twin: {outcome['analytic_rate'] * 100:.1f} %  "
           f"({outcome['fullstack_observations']} vs "
           f"{outcome['analytic_observations']} engine observations)")

    # The deployed protocol and the analytic model must agree: same
    # workload, rates within sampling noise of each other, both far
    # below the unprotected ~36 %.
    assert outcome["fullstack_rate"] < 0.15
    assert abs(outcome["fullstack_rate"] - outcome["analytic_rate"]) < 0.05
    # The engine genuinely saw a fanned-out stream (fakes >> reals).
    assert (outcome["fullstack_observations"]
            > 2 * outcome["queries_issued"])
