"""Pipeline perf benches: the trajectory behind ``BENCH_pipeline.json``.

Three hot paths, measured the same way ``python -m repro perf`` (i.e.
:mod:`repro.perf`) measures them, plus the headline acceptance claim
of the hot-path overhaul: indexed linkability scoring over a
10 k-query history is >= 5x faster than the pre-index linear scan with
bit-identical scores.

Marked ``perf`` — excluded from tier-1; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_pipeline.py \
        --benchmark-only -m perf
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import single_run
from repro import perf
from repro.core.sensitivity import LinkabilityAssessor
from repro.text.cache import cache_stats, clear_caches

pytestmark = pytest.mark.perf

SPEEDUP_FLOOR = 5.0  # acceptance: >= 5x over the linear scan at 10k


def test_bench_linkability_index_speedup(benchmark, report):
    """10k-query history: indexed score >= 5x the linear scan,
    bit-identical."""
    texts = perf.workload_queries(10000 + 40, seed=3)
    history, probes = texts[:10000], texts[10000:]
    assessor = LinkabilityAssessor(history=history)

    def indexed_pass():
        return [assessor.score(query) for query in probes]

    indexed_scores = single_run(benchmark, indexed_pass)
    begin = time.perf_counter()
    indexed_scores = indexed_pass()
    indexed_seconds = time.perf_counter() - begin
    begin = time.perf_counter()
    linear_scores = [assessor.score_linear(query) for query in probes]
    linear_seconds = time.perf_counter() - begin

    speedup = linear_seconds / indexed_seconds
    report("\n".join([
        "",
        "== Linkability: inverted index vs linear scan (10k history) ==",
        f"indexed : {len(probes) / indexed_seconds:>10.1f} scores/sec",
        f"linear  : {len(probes) / linear_seconds:>10.1f} scores/sec",
        f"speedup : {speedup:>10.1f}x  (floor {SPEEDUP_FLOOR:.0f}x)",
        f"scores bit-identical: {indexed_scores == linear_scores}",
    ]))
    assert indexed_scores == linear_scores
    assert speedup >= SPEEDUP_FLOOR


def test_bench_memoized_text_stack(benchmark, report):
    """Warm-path assessments beat the cold path; caches record hits."""
    clear_caches()
    results = single_run(
        benchmark, perf.bench_sensitivity,
        history_size=5000, probes=200, linear_probes=10, seed=1)
    stats = cache_stats()
    report("\n".join([
        "",
        "== Memoized text stack (5k history, 200 probes) ==",
        f"cold : {results['cold_assessments_per_sec']:>10.1f} assessments/sec",
        f"warm : {results['warm_assessments_per_sec']:>10.1f} assessments/sec",
        f"stem cache      : {stats['porter_stem']['hits']} hits / "
        f"{stats['porter_stem']['misses']} misses",
        f"vector cache    : {stats['query_vectors']['hits']} hits / "
        f"{stats['query_vectors']['misses']} misses",
    ]))
    assert results["scores_bit_identical"]
    assert (results["warm_assessments_per_sec"]
            > results["cold_assessments_per_sec"])
    assert stats["query_vectors"]["hits"] > 0
    assert stats["porter_stem"]["hits"] > 0


def test_bench_simulator_events_per_sec(benchmark, report):
    """The slim event loop on the synthetic rescheduling workload."""
    results = single_run(benchmark, perf.bench_simulator,
                         num_events=200000, chains=64, seed=0)
    report("\n".join([
        "",
        "== Simulator event loop ==",
        f"events     : {results['events']}",
        f"cancelled  : {results['cancelled']}",
        f"events/sec : {results['events_per_sec']:>12.0f}",
    ]))
    assert results["events"] >= 200000
    assert results["events_per_sec"] > 0


def test_bench_end_to_end_searches(benchmark, report):
    """Wall-clock protected searches/sec + the stage breakdown."""
    results = single_run(benchmark, perf.bench_search,
                         num_nodes=12, searches=10, seed=7)
    stages = results["stage_breakdown_simulated_seconds"]
    report("\n".join([
        "",
        "== End-to-end protected searches ==",
        f"searches/sec : {results['searches_per_sec']:>8.2f} "
        f"({results['ok']}/{results['searches']} ok)",
        "stages       : " + ", ".join(
            f"{name}={duration * 1000:.1f}ms"
            for name, duration in stages.items()),
    ]))
    assert results["ok"] == results["searches"]
    # Every canonical pipeline stage appears in the traced breakdown.
    for stage in ("sensitivity", "adaptive_k", "fake_generation",
                  "fanout", "engine", "response_filtering"):
        assert stage in stages
    # The engine row is service time, the path row the relay/network
    # remainder — they must no longer alias the same round trip.
    assert stages["engine"] != stages["path"]


ENGINE_SPEEDUP_FLOOR = 5.0  # acceptance: replicas+cache+batch vs 1 replica


def test_bench_engine_scaling_speedup(benchmark, report):
    """Sharded replicas + caches + batching >= 5x one bare replica,
    with byte-identical result pages."""
    results = single_run(benchmark, perf.bench_engine_scaling, seed=0)
    report("\n".join([
        "",
        "== Engine tier scale-out ==",
        f"baseline : {results['baseline_searches_per_sec']:>10.1f} "
        "searches/sec  (1 replica, no cache/batch)",
        *(f"{row['replicas']} replicas: "
          f"{row['searches_per_sec']:>10.1f} searches/sec  "
          f"({row['cache_hit_rate'] * 100:.0f}% cache hits)"
          for row in results["scaled"]),
        f"speedup  : {results['speedup']:>10.1f}x  "
        f"(floor {ENGINE_SPEEDUP_FLOOR:.0f}x)",
        f"sharded pages identical: {results['sharded_identical']}",
    ]))
    assert results["sharded_identical"]
    assert results["speedup"] >= ENGINE_SPEEDUP_FLOOR


SHARD_SPEEDUP_FLOOR = 3.0  # acceptance: 8 workers vs 1, given the cores


def test_bench_shard_scaling(benchmark, report):
    """The sharded kernel's nodes-vs-events/sec curve, plus the worker
    scale-out claim.

    The >= 3x aggregate-events/sec acceptance at 8 workers presumes 8
    cores to run them on; parallel speedup is physically bounded by
    ``cpu_count``, so on smaller boxes the assertion degrades to the
    honest one — the worker machinery must not *lose* more than the
    documented barrier/IPC overhead — and the full floor is asserted
    only where it is achievable.
    """
    results = single_run(benchmark, perf.bench_shard_scaling, seed=0)
    cores = results["cpu_count"]
    report("\n".join([
        "",
        "== Sharded kernel scale-out ==",
        *(f"{row['num_nodes']:>6} nodes : "
          f"{row['events_per_sec']:>10.0f} events/sec  "
          f"({row['cross_shard_fraction'] * 100:.0f}% cross-shard)"
          for row in results["node_curve"]),
        *(f"{row['workers']:>2} workers : "
          f"{row['events_per_sec']:>10.0f} events/sec  "
          f"({row['speedup']:.2f}x)"
          for row in results["worker_curve"]),
        f"cores: {cores}, best: {results['best_workers']} workers at "
        f"{results['best_events_per_sec']:.0f} events/sec "
        f"({results['best_speedup']:.2f}x; floor {SHARD_SPEEDUP_FLOOR:.0f}x "
        f"when cores >= 8)",
    ]))
    assert [row["num_nodes"] for row in results["node_curve"]] \
        == sorted(row["num_nodes"] for row in results["node_curve"])
    assert all(row["events_per_sec"] > 0 for row in results["node_curve"])
    if cores >= 8:
        assert results["best_speedup"] >= SHARD_SPEEDUP_FLOOR
    else:
        # Single-digit cores: scale-out cannot beat the core count, so
        # gate what is measurable — the forked path must stay within
        # sane overhead of the in-process kernel.
        assert results["best_speedup"] >= 1.0  # workers=1 is in the pool
        slowest = min(row["speedup"] for row in results["worker_curve"])
        assert slowest >= 0.25, (
            f"worker overhead exploded: {slowest:.2f}x of workers=1")
