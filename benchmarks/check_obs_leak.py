"""Telemetry-leak gate: observability must never weaken CYCLOSA.

Runs the dynamic telemetry privacy audit (:mod:`repro.obs.audit`)
over a seeded deployment: a wiretap on every transmission plus a scan
of every emitted span, checking that

1. no trace identifier and no query text appears in any wire-visible
   byte (kinds, addresses, plaintext payload encodings, sealed
   ciphertexts),
2. no span attribute carries query text or a real/fake marker, and
3. the spans other nodes emit for the real query's fan-out leg are
   shape-identical to every fake leg's.

It then runs the engine-tier cache-indistinguishability audit: two
identically-seeded replica deployments — result caches on vs. off —
are driven through the same repetitive workload, and their complete
wiretap captures must match transmission for transmission (kind,
endpoints, size, timestamp). A cache that changed anything on the wire
would hand a passive adversary a query-popularity oracle.

Finally it audits the deterministic profiler's output: a small search
scenario runs under :mod:`repro.experiments.profiling` and every
frame of the collapsed-stack flamegraph plus the attribution JSON must
be a pure code location (``module:qualname``) — no query text, node
address or user identity may survive into a shareable profile.

Exit code 0 on a clean run, 1 on any sighting — wire it into CI next
to ``check_regression.py``::

    PYTHONPATH=src python -m benchmarks.check_obs_leak
    PYTHONPATH=src python -m benchmarks.check_obs_leak --nodes 16 --seed 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

DEFAULT_QUERIES = (
    "flu symptoms treatment",
    "cheap flights paris",
    "python generator tutorial",
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_obs_leak",
        description="audit a seeded deployment's telemetry for trace-id "
                    "or query-text leaks")
    parser.add_argument("--nodes", type=int, default=16,
                        help="deployment size (default 16)")
    parser.add_argument("--seed", type=int, default=3,
                        help="deployment seed (default 3)")
    parser.add_argument("--queries", nargs="*", default=None,
                        help="queries to drive (default: a built-in trio)")
    parser.add_argument("--drain", type=float, default=60.0,
                        help="simulated seconds to drain fake-leg "
                             "responses after the last search")
    args = parser.parse_args(argv)

    from repro import obs
    from repro.core.client import CyclosaNetwork

    queries = list(args.queries) if args.queries else list(DEFAULT_QUERIES)
    deployment = CyclosaNetwork.create(num_nodes=args.nodes, seed=args.seed,
                                       observe=True)
    report = obs.run_telemetry_audit(deployment, queries,
                                     drain_seconds=args.drain)
    print(report.format())
    if not report.ok:
        print("telemetry leak detected — observability output is "
              "carrying protocol secrets", file=sys.stderr)
        return 1

    from repro.core.config import CyclosaConfig

    def make_deployment(with_cache: bool) -> CyclosaNetwork:
        return CyclosaNetwork.create(
            num_nodes=min(args.nodes, 8), seed=args.seed,
            config=CyclosaConfig(
                engine_replicas=2,
                engine_cache_size=256 if with_cache else None))

    # Hit-heavy: every query repeats, so the caches genuinely serve
    # from memory while the wire must not change.
    cache_queries = (queries * 2)[: 2 * len(queries)]
    cache_report = obs.audit_cache_indistinguishability(
        make_deployment, cache_queries, drain_seconds=args.drain)
    print()
    print("cache indistinguishability:",
          "PASS" if cache_report.ok else "FAIL",
          f"({cache_report.messages_scanned} transmissions compared)")
    for violation in cache_report.violations:
        print(f"  - {violation}")
    if not cache_report.ok:
        print("cache hits are visible on the wire — the result cache "
              "is leaking query popularity", file=sys.stderr)
        return 1

    # Profile-output audit: the flamegraph and attribution a developer
    # would paste into a PR must provably contain only code locations.
    from repro.experiments import profiling

    profile_report = profiling.run_scenario(
        "search", seed=args.seed, nodes=min(args.nodes, 8),
        searches=len(queries), heap=False)
    profile_violations = obs.audit_profile_output(
        profile_report["collapsed"], profile_report["cpu"],
        profile_report["audit_needles"])
    frames = sum(len(stack) for stack in
                 obs.parse_collapsed(profile_report["collapsed"]))
    print()
    print("profile output audit:",
          "PASS" if not profile_violations else "FAIL",
          f"({frames} stack frames scanned, "
          f"{len(profile_report['audit_needles'])} workload strings "
          f"checked)")
    for violation in profile_violations:
        print(f"  - {violation}")
    if profile_violations:
        print("profile output is carrying workload data — flamegraphs "
              "must contain only code locations", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
