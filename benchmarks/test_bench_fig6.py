"""Fig 6: correctness/completeness of returned results (k = 3)."""

from benchmarks.conftest import single_run
from repro.experiments.fig6_accuracy import run


def test_bench_fig6_accuracy(benchmark, report):
    results = single_run(benchmark, run, num_users=60, mean_queries=60.0,
                         k=3, seed=0, max_queries=300)

    lines = ["", "== Fig 6 — accuracy of results returned to users (k=3) =="]
    lines.append(f"{'System':<12} {'Correctness':<12} {'Completeness'}")
    for name, score in results.items():
        lines.append(f"{name:<12} {score.correctness * 100:>8.1f} %  "
                     f"{score.completeness * 100:>9.1f} %")
    report("\n".join(lines))

    # Perfect-accuracy family (paper: 100 % both).
    for name in ("TOR", "TrackMeNot", "CYCLOSA"):
        assert results[name].perfect, name
    # OR-aggregation family loses accuracy (paper: ~65 % / ~70 %).
    for name in ("GooPIR", "PEAS", "X-Search"):
        assert results[name].completeness < 0.9, name
        assert results[name].correctness < 1.0, name


def test_bench_fig6_k_sensitivity(benchmark, report):
    """The paper notes accuracy 'values decrease for a larger k'."""

    def sweep():
        return {k: run(num_users=60, mean_queries=60.0, k=k, seed=0,
                       max_queries=150) for k in (3, 7)}

    results = single_run(benchmark, sweep)
    lines = ["", "== Fig 6 follow-up — OR-system accuracy vs k =="]
    for k, scores in results.items():
        lines.append(f"k={k}: X-Search completeness "
                     f"{scores['X-Search'].completeness * 100:.1f} %")
    report("\n".join(lines))
    assert (results[7]["X-Search"].completeness
            < results[3]["X-Search"].completeness)
    assert results[7]["CYCLOSA"].perfect  # unaffected by k
