"""Table II: precision/recall of the sensitivity categorizer."""

from benchmarks.conftest import single_run
from repro.experiments.table2_categorizer import PAPER_ROWS, run


def test_bench_table2_categorizer(benchmark, report):
    results = single_run(benchmark, run, num_users=80, mean_queries=80.0,
                         seed=0, max_queries=5000)

    lines = ["", "== Table II — detection of sensitive queries =="]
    lines.append(f"{'Semantic tool':<16} {'Precision':<10} {'(paper)':<9} "
                 f"{'Recall':<8} {'(paper)'}")
    for name, (precision, recall) in results.items():
        paper_p, paper_r = PAPER_ROWS[name]
        lines.append(f"{name:<16} {precision:<10.2f} {paper_p:<9.2f} "
                     f"{recall:<8.2f} {paper_r:.2f}")
    report("\n".join(lines))

    wordnet_p, wordnet_r = results["WordNet"]
    lda_p, lda_r = results["LDA"]
    combined_p, combined_r = results["WordNet + LDA"]
    # Paper's shape: WordNet precision is the worst by far; LDA is
    # strong on both; the combination has the best precision at a small
    # recall cost relative to LDA.
    assert wordnet_p < lda_p - 0.15
    assert combined_p >= lda_p - 0.02
    assert combined_r <= lda_r + 0.02
    assert lda_r > 0.8 and wordnet_r > 0.7
    # Absolute values within a band of the paper's numbers.
    assert abs(wordnet_p - 0.53) < 0.12
    assert abs(lda_p - 0.84) < 0.12
    assert abs(combined_p - 0.86) < 0.12
