"""Static-analysis gate: the trust-boundary linter must stay clean.

Runs :mod:`repro.lint` — taint, enclave-boundary, determinism and
layering checkers plus the whole-program PDG pass
(``taint-interprocedural`` / ``taint-field-flow``) — over
``src/repro`` and fails on any finding that is not recorded (with a
reviewed justification) in the repo-root ``lint-baseline.txt``.

This is the static sibling of ``check_obs_leak.py``: that gate proves
at *runtime* that telemetry carries no protocol secrets; this one
proves at *parse time* that no code path can route query text to a
wire payload, log line, exception message or span attribute outside
the sanctioned enclave scope — and that the simulation stays
deterministic and the layering DAG acyclic.

Exit code 0 on a clean run, 1 on any non-baselined finding — wire it
into CI next to ``check_regression.py``::

    PYTHONPATH=src python -m benchmarks.check_lint
    PYTHONPATH=src python -m benchmarks.check_lint --root /tmp/tree --no-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_lint",
        description="fail on non-baselined repro.lint findings")
    parser.add_argument("--root", default=None,
                        help="source root to lint (default: the installed "
                             "src/ tree)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: lint-baseline.txt "
                             "next to this repo's benchmarks/)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; fail on every finding")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for per-file analysis "
                             "(findings are identical for any N)")
    args = parser.parse_args(argv)

    from repro.lint import (default_root, format_text, load_baseline,
                            run_lint)

    root = Path(args.root).resolve() if args.root else default_root()
    findings = run_lint(root=root, jobs=args.jobs)

    grandfathered = []
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = Path(__file__).resolve().parent.parent / \
                "lint-baseline.txt"
        if baseline_path.exists():
            baseline = load_baseline(baseline_path)
            findings, grandfathered = baseline.apply(findings)
            stale = baseline.stale_entries(
                list(findings) + list(grandfathered))
            if stale:
                print(f"note: {len(stale)} stale baseline entries "
                      "(fixed — remove them from the baseline)")

    print(format_text(findings))
    if grandfathered:
        print(f"({len(grandfathered)} baselined findings suppressed)")
    if findings:
        print("static analysis failed — a trust-boundary, determinism "
              "or layering invariant is violated (docs/static-analysis.md)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
