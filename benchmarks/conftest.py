"""Benchmark-harness configuration.

Every benchmark regenerates one table/figure of the paper at a reduced
but statistically meaningful scale, prints the same rows/series the
paper reports, and asserts the qualitative shape (who wins, by roughly
what factor, where crossovers fall).

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


_REPORT_BLOCKS: list = []


@pytest.fixture(scope="session")
def report():
    """Collects report blocks; they are emitted in the terminal summary
    (see :func:`pytest_terminal_summary`), so the regenerated tables
    appear in a plain ``pytest benchmarks/ --benchmark-only`` run."""
    return _REPORT_BLOCKS.append


def pytest_terminal_summary(terminalreporter):
    if not _REPORT_BLOCKS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("PAPER REPRODUCTION REPORT")
    terminalreporter.write_line("=" * 72)
    for block in _REPORT_BLOCKS:
        for line in block.splitlines():
            terminalreporter.write_line(line)


def single_run(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
