"""Fig 8c: throughput vs latency under saturation."""

import pytest

from benchmarks.conftest import single_run
from repro.experiments.fig8c_throughput import (
    measure_cyclosa_service_time,
    measure_xsearch_service_time,
    run,
)


def test_bench_fig8c_saturation(benchmark, report):
    results = single_run(
        benchmark, run,
        rates=(1000, 2500, 5000, 10000, 20000, 30000, 40000),
        seed=0, duration=1.5)

    lines = ["", "== Fig 8c — throughput vs latency (no engine dispatch) =="]
    lines.append(f"{'system':<10} {'offered/s':<11} {'median':<10} {'p90'}")
    for name, series in results.items():
        for point in series:
            lines.append(f"{name:<10} {point['rate']:<11.0f} "
                         f"{point['median']:<10.3f} {point['p90']:.3f}")
        lines.append(f"{name:<10} capacity = {series[0]['capacity']:.0f} req/s")
    lines.append("(paper: CYCLOSA 40k req/s at 0.23 s median; X-Search "
                 "straggles from 30k req/s)")
    report("\n".join(lines))

    cyclosa = {p["rate"]: p for p in results["CYCLOSA"]}
    xsearch = {p["rate"]: p for p in results["X-Search"]}
    # CYCLOSA sustains 40 k req/s with a fast median (paper: 0.23 s).
    assert results["CYCLOSA"][0]["capacity"] > 40_000
    assert cyclosa[40000]["median"] < 0.5
    # X-Search's knee falls before 40 k (paper: straggles at 30 k).
    assert results["X-Search"][0]["capacity"] < 35_000
    assert xsearch[40000]["median"] > 3 * xsearch[10000]["median"]
    # Below both knees, the two behave comparably (RTT-dominated).
    assert cyclosa[10000]["median"] < 0.5


def test_bench_fig8c_tcs_scaling(benchmark, report):
    """Ablation: relay capacity vs the enclave's thread (TCS) count."""
    from repro.experiments.fig8c_throughput import run_tcs_scaling

    rows = single_run(benchmark, run_tcs_scaling, tcs_counts=(1, 2, 4),
                      duration=0.5)
    lines = ["", "== Fig 8c follow-up — capacity vs enclave TCS count =="]
    for row in rows:
        lines.append(f"TCS={row['servers']}: capacity "
                     f"{row['capacity']:.0f} req/s, overload median "
                     f"{row['median']:.3f} s")
    report("\n".join(lines))

    capacities = [row["capacity"] for row in rows]
    # Capacity scales linearly with TCS count in this regime.
    assert capacities[1] == pytest.approx(2 * capacities[0])
    assert capacities[2] == pytest.approx(4 * capacities[0])
    # Past-saturation latency falls as threads absorb the load.
    assert rows[2]["median"] < rows[0]["median"]


def test_bench_fig8c_service_times(benchmark, report):
    """The measured enclave service times that position the knees."""

    def measure():
        return (measure_cyclosa_service_time(seed=0),
                measure_xsearch_service_time(seed=0))

    cyclosa_service, xsearch_service = single_run(benchmark, measure)
    report(f"\nenclave service time: CYCLOSA relay {cyclosa_service * 1e6:.1f} µs"
           f" | X-Search proxy {xsearch_service * 1e6:.1f} µs")
    assert cyclosa_service < xsearch_service
    assert 1.0 / cyclosa_service > 40_000
    assert 1.0 / xsearch_service < 35_000
