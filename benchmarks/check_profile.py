"""Profile-attribution regression gate.

Re-runs the deterministic-profiler bench (the ``profile`` section of
``repro perf``) with the same workload parameters the committed
``BENCH_pipeline.json`` baseline recorded, and fails (exit code 1)
when any subsystem's share of CPU samples drifted more than
``--tolerance-pct`` percentage points (default 5) from the baseline —
self% or cum%, in either direction. A subsystem appearing from
nowhere at 6 % is exactly the silent cost creep this gate catches.

Unlike ``check_regression.py``, the quantity gated here is
*machine-independent*: the profiler samples call events, not time, so
the same seed produces the same sample distribution on any host. The
baseline's ``collapsed_sha256`` should also reproduce bit-for-bit on
the same Python version; a mismatch is reported as a note (stdlib
frames legitimately differ across interpreter versions), not a
failure. Run from the repo root::

    PYTHONPATH=src python -m benchmarks.check_profile
    PYTHONPATH=src python -m benchmarks.check_profile --tolerance-pct 3
    PYTHONPATH=src python -m benchmarks.check_profile --update

``--update`` merges a fresh ``profile`` section into the baseline
(leaving every other section untouched) instead of comparing — use it
after an intentional hot-path change, and commit the new shares with
the PR that moved them.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import perf
from repro.obs.profile import compare_attribution

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    perf.DEFAULT_BASELINE_NAME)

#: bench_profile parameters replayed from the baseline section.
SECTION_PARAMS = ("nodes", "searches", "sample_interval")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_profile",
        description="compare a fresh deterministic-profiler run against "
                    "the committed per-subsystem attribution baseline")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON (default {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance-pct", type=float, default=5.0,
                        help="allowed absolute drift per subsystem in "
                             "percentage points (default 5)")
    parser.add_argument("--update", action="store_true",
                        help="merge a fresh profile section into the "
                             "baseline instead of comparing")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; generate one with "
              f"`python -m repro perf --only profile --profile` "
              f"(or --update on an existing baseline)", file=sys.stderr)
        return 2
    baseline = perf.load_baseline(args.baseline)
    section = baseline.get("profile")

    if args.update:
        replay = {f"profile_{name}": section[name]
                  for name in SECTION_PARAMS} if section else {}
        baseline["profile"] = perf.bench_profile(
            seed=baseline.get("meta", {}).get("params", {}).get("seed", 0)
            or 0, **replay)
        perf.write_baseline(baseline, args.baseline)
        print(f"updated the profile section of {args.baseline}")
        return 0

    if section is None:
        print(f"{args.baseline} has no 'profile' section; add one with "
              f"`python -m repro perf --only profile --profile` or "
              f"`python -m benchmarks.check_profile --update`",
              file=sys.stderr)
        return 2

    seed = baseline.get("meta", {}).get("params", {}).get("seed", 0) or 0
    fresh = perf.bench_profile(
        seed=seed, **{f"profile_{name}": section[name]
                      for name in SECTION_PARAMS})

    rows = compare_attribution(section, fresh,
                               tolerance_pct=args.tolerance_pct)
    width = max(len(row["subsystem"]) for row in rows)
    print(f"profile attribution vs baseline "
          f"({section['scenario']} scenario, {section['nodes']} nodes, "
          f"{section['searches']} searches, 1 sample / "
          f"{section['sample_interval']} call events)")
    print(f"{'subsystem':<{width}}  {'self% base':>10}  {'self%':>7}  "
          f"{'cum% base':>10}  {'cum%':>7}  verdict")
    failed = False
    for row in rows:
        verdict = "DRIFTED" if row["drifted"] else "ok"
        failed = failed or row["drifted"]
        print(f"{row['subsystem']:<{width}}  "
              f"{row['self_pct_baseline']:>10.2f}  "
              f"{row['self_pct_fresh']:>7.2f}  "
              f"{row['cum_pct_baseline']:>10.2f}  "
              f"{row['cum_pct_fresh']:>7.2f}  {verdict}")
    print(f"\ntolerance: ±{args.tolerance_pct:.1f} percentage points "
          f"per subsystem (self% and cum%)")

    if fresh["collapsed_sha256"] != section.get("collapsed_sha256"):
        print("note: collapsed-stack digest differs from the baseline "
              "(expected across Python versions; shares above are the "
              "gated quantity)")

    if failed:
        print("FAIL: subsystem CPU attribution drifted beyond tolerance "
              "— either fix the hot path or re-baseline with --update "
              "and justify the shift in the PR", file=sys.stderr)
        return 1
    print("ok: subsystem attribution within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
