"""Perf-trajectory regression guard.

Re-runs the pipeline benches with the *same workload parameters* the
committed ``BENCH_pipeline.json`` baseline recorded, and fails (exit
code 1) when any throughput metric fell more than ``--tolerance``
(default 20 %) below the baseline. Run it from the repo root::

    PYTHONPATH=src python -m benchmarks.check_regression
    PYTHONPATH=src python -m benchmarks.check_regression --tolerance 0.3
    PYTHONPATH=src python -m benchmarks.check_regression --update

``--update`` rewrites the baseline from the fresh run instead of
comparing — use it after an intentional perf change (and commit the
new numbers with the PR that earned them).

Baselines are machine-relative: comparing a laptop run against a CI
baseline measures the machines, not the code. Regenerate with
``--update`` (or ``python -m repro perf``) when moving machines.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import perf

#: The committed baseline lives at the repo root, one level above
#: this package.
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    perf.DEFAULT_BASELINE_NAME)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_regression",
        description="compare a fresh perf run against the committed "
                    "BENCH_pipeline.json baseline")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON (default {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional slowdown per metric "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the fresh run "
                             "instead of comparing")
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; generate one with "
              f"`python -m repro perf` (or --update)", file=sys.stderr)
        if not args.update:
            return 2
        baseline = None
    else:
        baseline = perf.load_baseline(args.baseline)

    params = dict(baseline["meta"]["params"]) if baseline else {}
    fresh = perf.run_all(**params)

    if args.update or baseline is None:
        perf.write_baseline(fresh, args.baseline)
        print(f"updated {args.baseline}")
        return 0

    if not fresh["sensitivity"]["scores_bit_identical"]:
        print("FAIL: indexed linkability diverged from the linear scan",
              file=sys.stderr)
        return 1

    scaling = fresh.get("engine_scaling")
    if scaling is not None and not scaling["sharded_identical"]:
        print("FAIL: sharded engine results diverged from the unsharded "
              "baseline", file=sys.stderr)
        return 1

    rows = perf.compare(baseline, fresh, tolerance=args.tolerance)
    width = max(len(row["metric"]) for row in rows)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'ratio':>7}")
    failed = False
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        failed = failed or row["regressed"]
        print(f"{row['metric']:<{width}}  {row['baseline']:>12.1f}  "
              f"{row['fresh']:>12.1f}  {row['ratio']:>6.2f}x  {verdict}")
    print(f"\ntolerance: fresh >= {(1 - args.tolerance):.2f}x baseline "
          f"per metric")
    if failed:
        print("FAIL: perf regression against the committed baseline",
              file=sys.stderr)
        return 1
    print("ok: no perf regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
