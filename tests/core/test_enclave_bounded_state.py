"""Bounded per-record enclave state (no unbounded pending growth)."""

import random

import pytest

from repro.core.enclave import CyclosaEnclave
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost


def paired(secret, a, b):
    send_a, recv_a = _directional_keys(secret, initiator=True)
    send_b, recv_b = _directional_keys(secret, initiator=False)
    return (SecureChannel(peer=b, send_key=send_a, recv_key=recv_a),
            SecureChannel(peer=a, send_key=send_b, recv_key=recv_b))


class SmallPendingEnclave(CyclosaEnclave):
    MAX_PENDING = 10


@pytest.fixture
def enclave():
    host = EnclaveHost(random.Random(77))
    enclave = host.create_enclave(SmallPendingEnclave, table_capacity=500)
    local, _remote = paired(b"p" * 32, "me", "r1")
    enclave.install_peer_channel("r1", local)
    engine_out, _engine_end = paired(b"e" * 32, "me", "engine")
    enclave.install_engine_channel(engine_out)
    return enclave


class TestBoundedPending:
    def test_pending_is_capped(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(20)])
        for index in range(50):
            enclave.build_protected_batch(f"query {index}", 0, ["r1"])
        enclave._depth += 1
        try:
            assert len(enclave.trusted["pending"]) <= 10
        finally:
            enclave._depth -= 1

    def test_newest_entries_survive_eviction(self, enclave):
        for index in range(30):
            enclave.build_protected_batch(f"query {index}", 0, ["r1"])
        # The most recent real query's token must still be routable.
        assert enclave.pending_token_for_relay("r1") is not None

    def test_forwards_are_capped(self, enclave):
        remote_local, remote = paired(b"q" * 32, "me", "r1")
        # Re-install so we hold the client end for sealing requests.
        enclave.install_peer_channel("r1", remote_local)
        for index in range(40):
            sealed = remote.seal({"token": f"t{index}",
                                  "query": f"fwd {index}", "meta": {}})
            assert enclave.unwrap_forward("r1", sealed) is not None
        enclave._depth += 1
        try:
            assert len(enclave.trusted["forwards"]) <= 10
        finally:
            enclave._depth -= 1

    def test_evicted_response_silently_dropped(self, enclave):
        # Build one real query, then flood pending until it is evicted.
        enclave.build_protected_batch("the original", 0, ["r1"])
        token = enclave.pending_token_for_relay("r1")
        for index in range(20):
            enclave.build_protected_batch(f"flood {index}", 0, ["r1"])
        # The original's token is gone; a late response is ignored.
        _local, remote = paired(b"p" * 32, "me", "r1")
        # (remote end already consumed seqs; craft a fresh pair instead)
        assert enclave.pending_token_for_relay("r1") != token
