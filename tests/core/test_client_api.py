"""Public-API surface tests for CyclosaNetwork/CyclosaUser/SearchResult."""

import pytest

from repro.core.client import CyclosaNetwork, SearchResult
from repro.searchengine.corpus import build_corpus


class TestSearchResult:
    def test_ok_and_documents(self):
        result = SearchResult(query="q", k=2, status="ok",
                              hits=[{"url": "u1"}, {"url": "u2"}],
                              latency=0.5)
        assert result.ok
        assert result.documents == ["u1", "u2"]

    def test_failure_states(self):
        for status in ("captcha", "relay-failure", "no-peers",
                       "channel-failure", "timeout"):
            result = SearchResult(query="q", k=0, status=status, hits=[],
                                  latency=1.0)
            assert not result.ok
            assert result.documents == []


class TestDeploymentOptions:
    def test_custom_corpus_is_served(self):
        corpus = build_corpus(docs_per_topic=6, seed=99)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=1,
                                           corpus=corpus,
                                           warmup_seconds=30)
        assert deployment.engine_node.engine.corpus is corpus
        result = deployment.node(0).search("symptoms cancer",
                                           k_override=1)
        assert result.ok

    def test_zero_warmup_still_functions(self):
        deployment = CyclosaNetwork.create(num_nodes=6, seed=2,
                                           warmup_seconds=0)
        # Engine handshake + gossip happen lazily during the search.
        result = deployment.node(0).search("cold start probe",
                                           k_override=1, max_wait=300.0)
        assert result.status in ("ok", "no-peers")

    def test_user_handles_are_cached(self):
        deployment = CyclosaNetwork.create(num_nodes=6, seed=3,
                                           warmup_seconds=30)
        assert deployment.node(1) is deployment.node(1)

    def test_engine_log_grows_monotonically(self):
        deployment = CyclosaNetwork.create(num_nodes=6, seed=4,
                                           warmup_seconds=30)
        before = len(deployment.engine_log)
        deployment.node(0).search("monotone probe", k_override=1)
        assert len(deployment.engine_log) > before

    def test_search_timeout_status(self):
        deployment = CyclosaNetwork.create(num_nodes=6, seed=5,
                                           warmup_seconds=30)
        # Kill all peers so nothing can answer, and disable retries'
        # chance to finish within the tiny wait budget.
        for victim in deployment.nodes[1:]:
            victim.pss.stop()  # a crashed host stops gossiping too
            deployment.network.unregister(victim.address)
        result = deployment.node(0).search("will time out",
                                           k_override=1, max_wait=0.5)
        assert result.status in ("timeout", "relay-failure", "no-peers",
                                 "channel-failure")
        assert not result.ok
