"""Tests for the CYCLOSA enclave's trusted logic."""

import random

import pytest

from repro.core.enclave import CyclosaEnclave
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost
from repro.sgx.errors import EnclaveIsolationError


def paired_channels(secret: bytes, peer_a: str, peer_b: str):
    send_a, recv_a = _directional_keys(secret, initiator=True)
    send_b, recv_b = _directional_keys(secret, initiator=False)
    return (SecureChannel(peer=peer_b, send_key=send_a, recv_key=recv_a),
            SecureChannel(peer=peer_a, send_key=send_b, recv_key=recv_b))


@pytest.fixture
def rng():
    return random.Random(9)


@pytest.fixture
def host(rng):
    return EnclaveHost(rng)


@pytest.fixture
def enclave(host):
    return host.create_enclave(CyclosaEnclave, table_capacity=100)


@pytest.fixture
def wired(enclave, rng):
    """Enclave with a client peer channel and an engine channel."""
    client_end, relay_end = paired_channels(b"p" * 32, "client", "relay")
    engine_out, engine_end = paired_channels(b"e" * 32, "relay", "engine")
    enclave.install_peer_channel("client", relay_end)
    enclave.install_engine_channel(engine_out)
    return enclave, client_end, engine_end


class TestChannels:
    def test_install_and_query(self, enclave, rng):
        a, b = paired_channels(b"x" * 32, "n1", "n2")
        assert not enclave.has_peer_channel("n2")
        enclave.install_peer_channel("n2", a)
        assert enclave.has_peer_channel("n2")
        enclave.drop_peer_channel("n2")
        assert not enclave.has_peer_channel("n2")

    def test_engine_channel(self, enclave, rng):
        assert not enclave.has_engine_channel()
        a, _ = paired_channels(b"x" * 32, "relay", "engine")
        enclave.install_engine_channel(a)
        assert enclave.has_engine_channel()

    def test_trusted_state_isolated(self, enclave):
        with pytest.raises(EnclaveIsolationError):
            _ = enclave.trusted


class TestTable:
    def test_seed_table(self, enclave):
        grew = enclave.seed_table(["q1", "q2", "q2"])
        assert grew == 2
        assert enclave.table_size() == 2

    def test_seeding_charges_epc(self, enclave, host):
        before = host.epc.usage(enclave.enclave_id)
        enclave.seed_table([f"query number {i}" for i in range(300)])
        assert host.epc.usage(enclave.enclave_id) > before


class TestProtection:
    def _install_relays(self, enclave, names):
        ends = {}
        for name in names:
            local, remote = paired_channels(
                name.encode().ljust(32, b"_"), "me", name)
            enclave.install_peer_channel(name, local)
            ends[name] = remote
        return ends

    def test_batch_covers_relays_once(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(10)])
        ends = self._install_relays(enclave, ["r1", "r2", "r3"])
        batch = enclave.build_protected_batch("real query", 2,
                                              ["r1", "r2", "r3"])
        assert sorted(relay for relay, _ in batch) == ["r1", "r2", "r3"]

    def test_exactly_one_real_query(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(10)])
        ends = self._install_relays(enclave, ["r1", "r2", "r3"])
        batch = enclave.build_protected_batch("real query", 2,
                                              ["r1", "r2", "r3"])
        texts = []
        for relay, sealed in batch:
            record = ends[relay].open(sealed)
            texts.append((record["query"], record["meta"]["is_fake"]))
        real = [q for q, fake in texts if not fake]
        assert real == ["real query"]
        fakes = [q for q, fake in texts if fake]
        assert len(fakes) == 2
        assert all(q != "real query" for q in fakes)

    def test_wrong_relay_count_rejected(self, enclave):
        self._install_relays(enclave, ["r1"])
        with pytest.raises(ValueError):
            enclave.build_protected_batch("q", 2, ["r1"])

    def test_missing_channel_rejected(self, enclave):
        with pytest.raises(KeyError):
            enclave.build_protected_batch("q", 0, ["stranger"])

    def test_empty_table_degrades_to_zero_fakes(self, enclave):
        self._install_relays(enclave, ["r1", "r2", "r3"])
        batch = enclave.build_protected_batch("q", 2, ["r1", "r2", "r3"])
        assert len(batch) == 1  # only the real query went out

    def test_pending_token_tracking(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(10)])
        self._install_relays(enclave, ["r1", "r2"])
        enclave.build_protected_batch("real", 1, ["r1", "r2"])
        tokens = [enclave.pending_token_for_relay(r) for r in ("r1", "r2")]
        assert sum(t is not None for t in tokens) == 1

    def test_rebuild_real_moves_relay(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(10)])
        ends = self._install_relays(enclave, ["r1", "r2", "r3"])
        enclave.build_protected_batch("real", 1, ["r1", "r2"])
        old_relay = next(r for r in ("r1", "r2")
                         if enclave.pending_token_for_relay(r))
        token = enclave.pending_token_for_relay(old_relay)
        new_token, sealed = enclave.rebuild_real(token, "r3")
        assert enclave.pending_token_for_relay("r3") == new_token
        record = ends["r3"].open(sealed)
        assert record["query"] == "real"

    def test_rebuild_unknown_token_rejected(self, enclave):
        self._install_relays(enclave, ["r1"])
        with pytest.raises(KeyError):
            enclave.rebuild_real("ghost-token", "r1")


class TestRelayPath:
    def test_unwrap_stores_query_and_seals_for_engine(self, wired):
        enclave, client_end, engine_end = wired
        sealed = client_end.seal({"token": "t1", "query": "forwarded query",
                                  "meta": {"true_user": "u1"}})
        result = enclave.unwrap_forward("client", sealed)
        assert result is not None
        handle, for_engine = result
        assert enclave.table_size() == 1  # stored as future fake
        record = engine_end.open(for_engine)
        assert record["query"] == "forwarded query"
        assert record["meta"]["true_user"] == "u1"

    def test_unwrap_from_unknown_peer_dropped(self, wired):
        enclave, client_end, _ = wired
        sealed = client_end.seal({"token": "t", "query": "q", "meta": {}})
        assert enclave.unwrap_forward("stranger", sealed) is None

    def test_unwrap_garbage_dropped(self, wired):
        enclave, _, _ = wired
        assert enclave.unwrap_forward("client", b"garbage") is None
        assert enclave.table_size() == 0

    def test_wrap_relay_response_roundtrip(self, wired):
        enclave, client_end, engine_end = wired
        sealed = client_end.seal({"token": "t42", "query": "q", "meta": {}})
        handle, _ = enclave.unwrap_forward("client", sealed)
        engine_reply = engine_end.seal(
            {"status": "ok", "hits": [{"url": "u1", "doc_id": 1,
                                       "score": 0.5}]})
        out = enclave.wrap_relay_response(handle, engine_reply)
        assert out is not None
        src, sealed_response = out
        assert src == "client"
        response = client_end.open(sealed_response)
        assert response["token"] == "t42"
        assert response["hits"][0]["url"] == "u1"

    def test_wrap_with_unknown_handle_dropped(self, wired):
        enclave, _, engine_end = wired
        reply = engine_end.seal({"status": "ok", "hits": []})
        assert enclave.wrap_relay_response(999, reply) is None

    def test_handle_single_use(self, wired):
        enclave, client_end, engine_end = wired
        sealed = client_end.seal({"token": "t", "query": "q", "meta": {}})
        handle, _ = enclave.unwrap_forward("client", sealed)
        reply = engine_end.seal({"status": "ok", "hits": []})
        assert enclave.wrap_relay_response(handle, reply) is not None
        reply2 = engine_end.seal({"status": "ok", "hits": []})
        assert enclave.wrap_relay_response(handle, reply2) is None


class TestResponseFiltering:
    def test_real_response_surfaces(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(5)])
        local, remote = paired_channels(b"r" * 32, "me", "r1")
        enclave.install_peer_channel("r1", local)
        enclave.build_protected_batch("real query", 0, ["r1"])
        token = enclave.pending_token_for_relay("r1")
        response = remote.seal({"token": token, "status": "ok",
                                "hits": [{"url": "u"}]})
        result = enclave.open_relay_response("r1", response)
        assert result is not None
        assert result["query"] == "real query"

    def test_fake_response_dropped_silently(self, enclave):
        enclave.seed_table([f"fake {i}" for i in range(5)])
        ends = {}
        for name in ("r1", "r2"):
            local, remote = paired_channels(
                name.encode().ljust(32, b"x"), "me", name)
            enclave.install_peer_channel(name, local)
            ends[name] = remote
        batch = enclave.build_protected_batch("real", 1, ["r1", "r2"])
        real_relay = next(r for r in ("r1", "r2")
                          if enclave.pending_token_for_relay(r))
        fake_relay = "r2" if real_relay == "r1" else "r1"
        # Dig out the fake's token by decrypting its record.
        fake_sealed = next(s for r, s in batch if r == fake_relay)
        fake_token = ends[fake_relay].open(fake_sealed)["token"]
        response = ends[fake_relay].seal(
            {"token": fake_token, "status": "ok", "hits": [{"url": "x"}]})
        assert enclave.open_relay_response(fake_relay, response) is None

    def test_unknown_token_dropped(self, enclave):
        local, remote = paired_channels(b"r" * 32, "me", "r1")
        enclave.install_peer_channel("r1", local)
        response = remote.seal({"token": "bogus", "status": "ok", "hits": []})
        assert enclave.open_relay_response("r1", response) is None

    def test_response_from_unknown_relay_dropped(self, enclave):
        assert enclave.open_relay_response("ghost", b"bytes") is None
