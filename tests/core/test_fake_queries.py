"""Tests for the past-queries table."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.fake_queries import PastQueryTable


@pytest.fixture
def rng():
    return random.Random(6)


class TestTable:
    def test_add_and_len(self):
        table = PastQueryTable(capacity=10)
        assert table.add("query one")
        assert len(table) == 1
        assert "query one" in table

    def test_add_returns_growth(self):
        table = PastQueryTable(capacity=10)
        assert table.add("q") is True
        assert table.add("q") is False  # duplicate

    def test_blank_rejected(self):
        table = PastQueryTable(capacity=10)
        assert table.add("   ") is False
        assert len(table) == 0

    def test_capacity_fifo_eviction(self):
        table = PastQueryTable(capacity=3)
        for index in range(5):
            table.add(f"q{index}")
        assert len(table) == 3
        assert table.entries() == ["q2", "q3", "q4"]

    def test_eviction_does_not_grow(self):
        table = PastQueryTable(capacity=2)
        table.add("a")
        table.add("b")
        assert table.add("c") is False  # one in, one out: net zero

    def test_repeat_refreshes_position(self):
        table = PastQueryTable(capacity=3)
        for query in ("a", "b", "c"):
            table.add(query)
        table.add("a")  # refreshed to the back
        table.add("d")  # evicts "b", not "a"
        assert "a" in table and "b" not in table

    def test_extend_counts_new(self):
        table = PastQueryTable(capacity=10)
        assert table.extend(["a", "b", "a", ""]) == 2

    def test_sample_distinct(self, rng):
        table = PastQueryTable(capacity=100)
        table.extend([f"q{i}" for i in range(50)])
        sample = table.sample(10, rng)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_excludes_real_query(self, rng):
        table = PastQueryTable(capacity=10)
        table.extend(["real", "fake1", "fake2"])
        for _ in range(20):
            assert "real" not in table.sample(2, rng, exclude="real")

    def test_sample_more_than_available(self, rng):
        table = PastQueryTable(capacity=10)
        table.extend(["a", "b"])
        assert sorted(table.sample(10, rng)) == ["a", "b"]

    def test_sample_empty_table(self, rng):
        assert PastQueryTable(capacity=5).sample(3, rng) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PastQueryTable(capacity=0)

    @given(st.lists(st.text(alphabet="abcdef ", min_size=1, max_size=10),
                    max_size=60),
           st.integers(min_value=1, max_value=20))
    def test_property_never_exceeds_capacity(self, queries, capacity):
        table = PastQueryTable(capacity=capacity)
        table.extend(queries)
        assert len(table) <= capacity

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=5),
                    min_size=1, max_size=30))
    def test_property_entries_unique(self, queries):
        table = PastQueryTable(capacity=10)
        table.extend(queries)
        entries = table.entries()
        assert len(entries) == len(set(entries))
