"""Tests for the adaptive protection rule (§V-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.adaptive import choose_k
from repro.core.sensitivity import SensitivityReport


def report(semantic: bool, linkability: float) -> SensitivityReport:
    return SensitivityReport(query="q", semantic_sensitive=semantic,
                             linkability=linkability)


class TestChooseK:
    def test_sensitive_gets_kmax(self):
        assert choose_k(report(True, 0.0), kmax=7) == 7

    def test_sensitive_overrides_linkability(self):
        assert choose_k(report(True, 0.1), kmax=7) == 7

    def test_zero_linkability_gets_zero(self):
        assert choose_k(report(False, 0.0), kmax=7) == 0

    def test_full_linkability_gets_kmax(self):
        assert choose_k(report(False, 1.0), kmax=7) == 7

    def test_linear_projection(self):
        assert choose_k(report(False, 0.5), kmax=7) == 4  # round(3.5)
        assert choose_k(report(False, 0.3), kmax=7) == 2  # round(2.1)

    def test_kmax_zero(self):
        assert choose_k(report(True, 1.0), kmax=0) == 0

    def test_negative_kmax_rejected(self):
        with pytest.raises(ValueError):
            choose_k(report(False, 0.5), kmax=-1)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=0, max_value=20))
    def test_property_bounds(self, linkability, kmax):
        k = choose_k(report(False, linkability), kmax)
        assert 0 <= k <= kmax

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_property_monotone_in_linkability(self, a, b):
        low, high = sorted((a, b))
        assert (choose_k(report(False, low), 7)
                <= choose_k(report(False, high), 7))
