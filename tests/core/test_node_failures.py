"""Failure-path tests for CyclosaNode: degraded views, missing engine,
unresponsive relays."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig


class TestDegradedOverlay:
    def test_small_view_degrades_k_not_availability(self):
        """With only 2 usable peers, a k=5 request degrades to the
        available relay count instead of failing (§V-C: the real query
        always goes out)."""
        deployment = CyclosaNetwork.create(num_nodes=3, seed=71,
                                           warmup_seconds=40)
        result = deployment.node(0).search("degraded view probe",
                                           k_override=5)
        assert result.ok
        assert result.k <= 2

    def test_isolated_node_reports_no_peers(self):
        """A node whose view is empty cannot protect anything; the
        search fails fast with a clear status."""
        deployment = CyclosaNetwork.create(num_nodes=4, seed=72,
                                           warmup_seconds=40)
        node = deployment.nodes[0]
        node.pss.stop()
        for address in node.pss.view.addresses():
            node.pss.view.remove(address)
        result = deployment.node(0).search("isolated probe", k_override=1)
        assert result.status == "no-peers"
        assert result.hits == []

    def test_all_relays_dead_eventually_fails(self):
        """When every selected relay is gone and no replacements
        answer, the search terminates with a failure status rather
        than hanging."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=2)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=73,
                                           config=config,
                                           warmup_seconds=40)
        # Kill everyone except the requester.
        for victim in deployment.nodes[1:]:
            victim.pss.stop()
            deployment.network.unregister(victim.address)
        result = deployment.node(0).search("doomed probe", k_override=2,
                                           max_wait=300.0)
        assert not result.ok
        assert result.status in ("relay-failure", "no-peers",
                                 "channel-failure", "timeout")

    def test_relay_without_engine_channel_drops(self):
        """A relay that never finished its engine handshake cannot
        forward; the client times out on it and retries elsewhere."""
        config = CyclosaConfig(relay_timeout=1.5, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=8, seed=74,
                                           config=config,
                                           warmup_seconds=40)
        # Sabotage one relay's engine channel.
        broken = deployment.nodes[3]
        broken.enclave._depth += 1
        broken.enclave.trusted["engine_channel"] = None
        broken.enclave._depth -= 1
        outcomes = [deployment.node(0).search(f"sabotage probe {i}",
                                              k_override=2,
                                              max_wait=240.0)
                    for i in range(6)]
        assert sum(1 for r in outcomes if r.ok) >= 5


class TestStatsUnderFailure:
    def test_retries_and_blacklists_counted(self):
        config = CyclosaConfig(relay_timeout=1.0, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=10, seed=75,
                                           config=config,
                                           warmup_seconds=40)
        # Make half the relays silently drop forwards.
        for node in deployment.nodes[5:]:
            node._handle_forward = lambda ctx: None
        client = deployment.nodes[0]
        for index in range(8):
            deployment.node(0).search(f"counting probe {index}",
                                      k_override=2, max_wait=240.0)
        assert client.stats.blacklisted_peers > 0
        assert client.stats.queries_issued == 8
