"""Failure-path tests for CyclosaNode: degraded views, missing engine,
unresponsive relays."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig


class TestDegradedOverlay:
    def test_small_view_degrades_k_not_availability(self):
        """With only 2 usable peers, a k=5 request degrades to the
        available relay count instead of failing (§V-C: the real query
        always goes out)."""
        deployment = CyclosaNetwork.create(num_nodes=3, seed=71,
                                           warmup_seconds=40)
        result = deployment.node(0).search("degraded view probe",
                                           k_override=5)
        assert result.ok
        assert result.k <= 2

    def test_isolated_node_reports_no_peers(self):
        """A node whose view is empty cannot protect anything; the
        search fails fast with a clear status."""
        deployment = CyclosaNetwork.create(num_nodes=4, seed=72,
                                           warmup_seconds=40)
        node = deployment.nodes[0]
        node.pss.stop()
        for address in node.pss.view.addresses():
            node.pss.view.remove(address)
        result = deployment.node(0).search("isolated probe", k_override=1)
        assert result.status == "no-peers"
        assert result.hits == []

    def test_all_relays_dead_eventually_fails(self):
        """When every selected relay is gone and no replacements
        answer, the search terminates with a failure status rather
        than hanging."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=2)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=73,
                                           config=config,
                                           warmup_seconds=40)
        # Kill everyone except the requester.
        for victim in deployment.nodes[1:]:
            victim.pss.stop()
            deployment.network.unregister(victim.address)
        result = deployment.node(0).search("doomed probe", k_override=2,
                                           max_wait=300.0)
        assert not result.ok
        assert result.status in ("relay-failure", "no-peers",
                                 "channel-failure", "timeout")

    def test_relay_without_engine_channel_drops(self):
        """A relay that never finished its engine handshake cannot
        forward; the client times out on it and retries elsewhere."""
        config = CyclosaConfig(relay_timeout=1.5, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=8, seed=74,
                                           config=config,
                                           warmup_seconds=40)
        # Sabotage one relay's engine channel.
        broken = deployment.nodes[3]
        broken.enclave._depth += 1
        broken.enclave.trusted["engine_channel"] = None
        broken.enclave._depth -= 1
        outcomes = [deployment.node(0).search(f"sabotage probe {i}",
                                              k_override=2,
                                              max_wait=240.0)
                    for i in range(6)]
        assert sum(1 for r in outcomes if r.ok) >= 5


class TestStatsUnderFailure:
    def test_retries_and_blacklists_counted(self):
        config = CyclosaConfig(relay_timeout=1.0, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=10, seed=75,
                                           config=config,
                                           warmup_seconds=40)
        # Make half the relays silently drop forwards.
        for node in deployment.nodes[5:]:
            node._handle_forward = lambda ctx: None
        client = deployment.nodes[0]
        for index in range(8):
            deployment.node(0).search(f"counting probe {index}",
                                      k_override=2, max_wait=240.0)
        assert client.stats.blacklisted_peers > 0
        assert client.stats.queries_issued == 8


class TestFilteredRealResponse:
    def test_channel_dropped_mid_flight_does_not_hang(self):
        """A concurrent search's timeout can blacklist a relay and drop
        its secure channel while another search's *real* response from
        that relay is still in flight. The response then fails to
        decrypt in-enclave ("no channel"), but the transport already
        cancelled the leg's timeout when the response arrived — before
        the hand-off to the §VI-b retry path this stranded the search
        forever. It must now terminate (retry elsewhere or fail
        explicitly), never hang."""
        config = CyclosaConfig(relay_timeout=1.5, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=75,
                                           config=config,
                                           warmup_seconds=40)
        node = deployment.nodes[0]
        results = []
        node.search("mid-flight probe", on_result=results.append,
                    k_override=2)
        # Dispatch is asynchronous (channel establishment, staggered
        # sends): run until the real record is on the wire, then
        # simulate the concurrent blacklist by dropping every peer
        # channel the client enclave holds.
        deployment.run(1.0)
        searches = node.outstanding_searches()
        assert searches, "search should still be in flight"
        for relay in list(searches[0].real_relays | searches[0].fake_relays):
            node.enclave.drop_peer_channel(relay)
        deployment.run(300.0)
        assert results, "search hung: no terminal result delivered"
        assert results[0]["status"] in ("ok", "relay-failure",
                                        "channel-failure", "no-peers")
        assert node.outstanding_count() == 0

    def test_dispatch_skips_relays_blacklisted_during_handshake(self):
        """While _ensure_channels waits on one peer's handshake another
        search can blacklist an already-ready relay; dispatch must
        re-check channels instead of sealing for a dead one (which
        raised KeyError out of the event loop)."""
        config = CyclosaConfig(relay_timeout=1.5, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=76,
                                           config=config,
                                           warmup_seconds=40)
        node = deployment.nodes[0]
        ready_peers = [p for p in node.pss.view.addresses()
                       if node.enclave.has_peer_channel(p)]
        results = []
        node.search("handshake race probe", on_result=results.append,
                    k_override=2)
        # Between selection and dispatch, blacklist every relay that
        # already had a channel — exactly what a concurrent timeout
        # does while the remaining handshakes are still settling.
        for peer in ready_peers:
            node._blacklist(peer)
        deployment.run(300.0)
        assert results, "search hung after mid-handshake blacklist"
        assert node.outstanding_count() == 0
