"""Tests for the sensitivity analysis (§V-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sensitivity import (
    LinkabilityAssessor,
    SemanticAssessor,
    SensitivityAnalysis,
    SensitivityReport,
)
from repro.text.wordnet import SyntheticWordNet


class TestSemanticAssessor:
    def test_wordnet_mode_single_hit_flags(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer", "tumor"}, mode="wordnet")
        assert assessor.is_sensitive("cancer treatment options")
        assert not assessor.is_sensitive("football scores")

    def test_lda_mode(self):
        assessor = SemanticAssessor(lda_terms={"therapy"}, mode="lda")
        assert assessor.is_sensitive("group therapy near me")
        assert not assessor.is_sensitive("group meetings near me")

    def test_combined_mode_needs_corroboration(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer"},
            lda_terms={"chemotherapy", "remission"},
            lda_core_terms=set(),
            mode="combined")
        # One weak LDA hit alone: not flagged.
        assert not assessor.is_sensitive("chemotherapy")
        # Two LDA hits: flagged.
        assert assessor.is_sensitive("chemotherapy remission")
        # LDA + WordNet agreement: flagged.
        assert assessor.is_sensitive("cancer chemotherapy")

    def test_combined_core_term_flags_alone(self):
        assessor = SemanticAssessor(
            lda_terms={"chemotherapy"},
            lda_core_terms={"chemotherapy"},
            mode="combined")
        assert assessor.is_sensitive("chemotherapy")

    def test_dictionaries_are_stemmed(self):
        assessor = SemanticAssessor(
            wordnet_terms={"treatments"}, mode="wordnet")
        assert assessor.is_sensitive("treatment")  # stems collide

    def test_glue_words_excluded_by_default(self):
        assessor = SemanticAssessor(
            wordnet_terms={"free", "cancer"}, mode="wordnet")
        assert not assessor.is_sensitive("free stuff online")
        assert assessor.is_sensitive("cancer")

    def test_custom_exclusions(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer"}, mode="wordnet",
            exclude_terms={"cancer"})
        assert not assessor.is_sensitive("cancer")

    def test_empty_query_not_sensitive(self):
        assessor = SemanticAssessor(wordnet_terms={"x"}, mode="wordnet")
        assert not assessor.is_sensitive("")
        assert not assessor.is_sensitive("the of and")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SemanticAssessor(mode="magic")

    def test_wordnet_min_hits_honored(self):
        # Regression: the threshold was stored but never consulted, so
        # min_hits=2 behaved like min_hits=1.
        strict = SemanticAssessor(
            wordnet_terms={"cancer", "tumor"}, mode="wordnet",
            wordnet_min_hits=2)
        assert not strict.is_sensitive("cancer treatment options")
        assert strict.is_sensitive("cancer tumor staging")

    def test_wordnet_min_hits_default_is_single_hit(self):
        # The default must stay 1 — the behaviour every caller observed
        # while the knob was dead.
        assessor = SemanticAssessor(
            wordnet_terms={"cancer", "tumor"}, mode="wordnet")
        assert assessor.wordnet_min_hits == 1
        assert assessor.is_sensitive("cancer treatment options")

    def test_wordnet_min_hits_ignored_outside_wordnet_mode(self):
        assessor = SemanticAssessor(
            lda_terms={"therapy"}, mode="lda", wordnet_min_hits=5)
        assert assessor.is_sensitive("group therapy near me")

    def test_from_resources_honors_min_hits(self):
        wordnet = SyntheticWordNet.build(seed=3)
        strict = SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet", wordnet_min_hits=2)
        assert strict.wordnet_min_hits == 2

    def test_from_resources_topics_scope(self):
        wordnet = SyntheticWordNet.build(seed=3)
        all_topics = SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet")
        health_only = SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet", sensitive_topics=("health",))
        assert len(health_only.wordnet_terms) < len(all_topics.wordnet_terms)


class TestLinkabilityAssessor:
    def test_no_history_scores_zero(self):
        assert LinkabilityAssessor().score("anything at all") == 0.0

    def test_identical_history_scores_high(self):
        assessor = LinkabilityAssessor(
            history=["flu symptoms treatment"] * 3)
        assert assessor.score("flu symptoms treatment") > 0.8

    def test_unrelated_history_scores_low(self):
        assessor = LinkabilityAssessor(
            history=["football scores", "basketball playoffs"])
        assert assessor.score("quantum chromodynamics") == 0.0

    def test_partial_overlap_in_between(self):
        assessor = LinkabilityAssessor(history=["flu symptoms"])
        score = assessor.score("flu vaccine")
        assert 0.0 < score < 1.0

    def test_record_grows_history(self):
        assessor = LinkabilityAssessor()
        assessor.record("flu symptoms")
        assert len(assessor) == 1
        assert assessor.score("flu symptoms") > 0.5

    def test_empty_query_records_nothing(self):
        assessor = LinkabilityAssessor()
        assessor.record("   ")
        assert len(assessor) == 0

    def test_score_bounded(self):
        assessor = LinkabilityAssessor(
            history=["a b c", "a b", "a", "a b c d"] * 10)
        assert 0.0 <= assessor.score("a b c d") <= 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LinkabilityAssessor(alpha=0.0)


# Query strings drawn from a tiny shared vocabulary, so randomized
# corpora get real term overlap (the interesting case for the index).
_VOCAB = ["flu", "symptoms", "treatment", "cancer", "football",
          "scores", "hotel", "paris", "vaccine", "the", "of"]
_query_strategy = st.lists(
    st.sampled_from(_VOCAB), min_size=0, max_size=5).map(" ".join)


class TestLinkabilityIndexEquivalence:
    """The inverted index must reproduce the linear scan bit-for-bit."""

    @settings(max_examples=60, deadline=None)
    @given(history=st.lists(_query_strategy, min_size=0, max_size=30),
           probe=_query_strategy,
           alpha=st.sampled_from([0.25, 0.5, 0.9, 1.0]))
    def test_property_indexed_equals_linear(self, history, probe, alpha):
        assessor = LinkabilityAssessor(alpha=alpha, history=history)
        indexed = assessor.score(probe)
        linear = assessor.score_linear(probe)
        assert indexed == pytest.approx(linear, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(history=st.lists(_query_strategy, min_size=1, max_size=30),
           records=st.lists(_query_strategy, min_size=0, max_size=10),
           probe=_query_strategy)
    def test_property_equivalence_survives_record(self, history, records,
                                                  probe):
        assessor = LinkabilityAssessor(history=history)
        for text in records:
            assessor.record(text)
        assert assessor.score(probe) == pytest.approx(
            assessor.score_linear(probe), abs=1e-12)

    def test_empty_vector_query_scores_zero_both_ways(self):
        assessor = LinkabilityAssessor(history=["flu symptoms"])
        assert assessor.score("the of and") == 0.0
        assert assessor.score_linear("the of and") == 0.0

    def test_fresh_profile_scores_zero_both_ways(self):
        assessor = LinkabilityAssessor()
        assert assessor.score("flu symptoms") == 0.0
        assert assessor.score_linear("flu symptoms") == 0.0

    def test_stopword_only_history_entries_still_count(self):
        # Entries that vectorize to nothing occupy the low end of the
        # ranking (cosine 0.0) — both implementations must agree.
        assessor = LinkabilityAssessor(
            history=["the of", "flu symptoms", "of the"])
        probe = "flu vaccine"
        assert assessor.score(probe) == assessor.score_linear(probe)
        assert assessor.score(probe) > 0.0


class TestLinkabilityWindow:
    def test_max_history_evicts_oldest(self):
        assessor = LinkabilityAssessor(history=["flu symptoms"],
                                       max_history=2)
        assessor.record("hotel paris")
        assessor.record("football scores")
        assert len(assessor) == 2
        # The evicted "flu symptoms" entry no longer contributes.
        assert assessor.score("flu symptoms") == \
            assessor.score_linear("flu symptoms")
        unwindowed = LinkabilityAssessor(
            history=["hotel paris", "football scores"])
        assert assessor.score("flu symptoms") == \
            unwindowed.score("flu symptoms")

    def test_windowed_equals_unwindowed_tail(self):
        texts = [f"flu symptoms day{i % 7}" for i in range(40)]
        windowed = LinkabilityAssessor(history=texts, max_history=10)
        tail = LinkabilityAssessor(history=texts[-10:])
        for probe in ("flu vaccine", "flu symptoms day3", "hotel paris"):
            assert windowed.score(probe) == tail.score(probe)
            assert windowed.score(probe) == windowed.score_linear(probe)

    def test_compaction_preserves_scores(self):
        # Push far past the compaction threshold (dead > 256).
        windowed = LinkabilityAssessor(max_history=8)
        texts = [f"flu symptoms day{i % 5}" for i in range(600)]
        for text in texts:
            windowed.record(text)
        tail = LinkabilityAssessor(history=texts[-8:])
        assert len(windowed) == 8
        probe = "flu symptoms day2"
        assert windowed.score(probe) == tail.score(probe)
        assert windowed.score(probe) == windowed.score_linear(probe)

    def test_invalid_max_history(self):
        with pytest.raises(ValueError):
            LinkabilityAssessor(max_history=0)


class TestSensitivityAnalysis:
    def test_assess_produces_report(self):
        analysis = SensitivityAnalysis(
            SemanticAssessor(wordnet_terms={"cancer"}, mode="wordnet"),
            LinkabilityAssessor(history=["cancer treatment"]))
        report = analysis.assess("cancer treatment")
        assert isinstance(report, SensitivityReport)
        assert report.semantic_sensitive
        assert report.linkability > 0.5

    def test_remember_feeds_linkability(self):
        analysis = SensitivityAnalysis(
            SemanticAssessor(mode="wordnet"), LinkabilityAssessor())
        assert analysis.assess("hotel booking paris").linkability == 0.0
        analysis.remember("hotel booking paris")
        assert analysis.assess("hotel booking paris").linkability > 0.5

    def test_report_validation(self):
        with pytest.raises(ValueError):
            SensitivityReport(query="q", semantic_sensitive=False,
                              linkability=1.5)
