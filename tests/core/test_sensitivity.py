"""Tests for the sensitivity analysis (§V-A)."""

import pytest

from repro.core.sensitivity import (
    LinkabilityAssessor,
    SemanticAssessor,
    SensitivityAnalysis,
    SensitivityReport,
)
from repro.text.wordnet import SyntheticWordNet


class TestSemanticAssessor:
    def test_wordnet_mode_single_hit_flags(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer", "tumor"}, mode="wordnet")
        assert assessor.is_sensitive("cancer treatment options")
        assert not assessor.is_sensitive("football scores")

    def test_lda_mode(self):
        assessor = SemanticAssessor(lda_terms={"therapy"}, mode="lda")
        assert assessor.is_sensitive("group therapy near me")
        assert not assessor.is_sensitive("group meetings near me")

    def test_combined_mode_needs_corroboration(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer"},
            lda_terms={"chemotherapy", "remission"},
            lda_core_terms=set(),
            mode="combined")
        # One weak LDA hit alone: not flagged.
        assert not assessor.is_sensitive("chemotherapy")
        # Two LDA hits: flagged.
        assert assessor.is_sensitive("chemotherapy remission")
        # LDA + WordNet agreement: flagged.
        assert assessor.is_sensitive("cancer chemotherapy")

    def test_combined_core_term_flags_alone(self):
        assessor = SemanticAssessor(
            lda_terms={"chemotherapy"},
            lda_core_terms={"chemotherapy"},
            mode="combined")
        assert assessor.is_sensitive("chemotherapy")

    def test_dictionaries_are_stemmed(self):
        assessor = SemanticAssessor(
            wordnet_terms={"treatments"}, mode="wordnet")
        assert assessor.is_sensitive("treatment")  # stems collide

    def test_glue_words_excluded_by_default(self):
        assessor = SemanticAssessor(
            wordnet_terms={"free", "cancer"}, mode="wordnet")
        assert not assessor.is_sensitive("free stuff online")
        assert assessor.is_sensitive("cancer")

    def test_custom_exclusions(self):
        assessor = SemanticAssessor(
            wordnet_terms={"cancer"}, mode="wordnet",
            exclude_terms={"cancer"})
        assert not assessor.is_sensitive("cancer")

    def test_empty_query_not_sensitive(self):
        assessor = SemanticAssessor(wordnet_terms={"x"}, mode="wordnet")
        assert not assessor.is_sensitive("")
        assert not assessor.is_sensitive("the of and")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SemanticAssessor(mode="magic")

    def test_from_resources_topics_scope(self):
        wordnet = SyntheticWordNet.build(seed=3)
        all_topics = SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet")
        health_only = SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet", sensitive_topics=("health",))
        assert len(health_only.wordnet_terms) < len(all_topics.wordnet_terms)


class TestLinkabilityAssessor:
    def test_no_history_scores_zero(self):
        assert LinkabilityAssessor().score("anything at all") == 0.0

    def test_identical_history_scores_high(self):
        assessor = LinkabilityAssessor(
            history=["flu symptoms treatment"] * 3)
        assert assessor.score("flu symptoms treatment") > 0.8

    def test_unrelated_history_scores_low(self):
        assessor = LinkabilityAssessor(
            history=["football scores", "basketball playoffs"])
        assert assessor.score("quantum chromodynamics") == 0.0

    def test_partial_overlap_in_between(self):
        assessor = LinkabilityAssessor(history=["flu symptoms"])
        score = assessor.score("flu vaccine")
        assert 0.0 < score < 1.0

    def test_record_grows_history(self):
        assessor = LinkabilityAssessor()
        assessor.record("flu symptoms")
        assert len(assessor) == 1
        assert assessor.score("flu symptoms") > 0.5

    def test_empty_query_records_nothing(self):
        assessor = LinkabilityAssessor()
        assessor.record("   ")
        assert len(assessor) == 0

    def test_score_bounded(self):
        assessor = LinkabilityAssessor(
            history=["a b c", "a b", "a", "a b c d"] * 10)
        assert 0.0 <= assessor.score("a b c d") <= 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LinkabilityAssessor(alpha=0.0)


class TestSensitivityAnalysis:
    def test_assess_produces_report(self):
        analysis = SensitivityAnalysis(
            SemanticAssessor(wordnet_terms={"cancer"}, mode="wordnet"),
            LinkabilityAssessor(history=["cancer treatment"]))
        report = analysis.assess("cancer treatment")
        assert isinstance(report, SensitivityReport)
        assert report.semantic_sensitive
        assert report.linkability > 0.5

    def test_remember_feeds_linkability(self):
        analysis = SensitivityAnalysis(
            SemanticAssessor(mode="wordnet"), LinkabilityAssessor())
        assert analysis.assess("hotel booking paris").linkability == 0.0
        analysis.remember("hotel booking paris")
        assert analysis.assess("hotel booking paris").linkability > 0.5

    def test_report_validation(self):
        with pytest.raises(ValueError):
            SensitivityReport(query="q", semantic_sensitive=False,
                              linkability=1.5)
