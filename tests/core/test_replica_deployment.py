"""The engine replica tier inside a full CYCLOSA deployment.

``CyclosaNetwork.create`` grows from one engine node to a sharded
replica tier when ``engine_replicas > 1``: these tests pin the
assembly (addresses, routing, merged honest-but-curious log) and the
end-to-end invariant that a protected search returns the same result
page whatever the replica count."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.searchengine.sharding import replica_addresses, route_to_replica


def deploy(replicas, cache=None, num_nodes=6, seed=9, **config_kwargs):
    return CyclosaNetwork.create(
        num_nodes=num_nodes, seed=seed,
        config=CyclosaConfig(engine_replicas=replicas,
                             engine_cache_size=cache, **config_kwargs))


class TestAssembly:
    def test_single_replica_keeps_the_legacy_shape(self):
        deployment = deploy(1)
        assert len(deployment.engine_nodes) == 1
        assert deployment.engine_node.address == "engine"
        assert deployment.engine_node.cluster is None

    def test_replica_tier_addresses_and_cluster(self):
        deployment = deploy(3)
        addresses = [node.address for node in deployment.engine_nodes]
        assert addresses == ["engine", "engine1", "engine2"]
        for node in deployment.engine_nodes:
            assert node.cluster == addresses
        assert deployment.engine_node is deployment.engine_nodes[0]

    def test_each_replica_gets_its_own_rate_limiter(self):
        deployment = deploy(3, engine_rate_limit=50)
        limiters = [node.rate_limiter for node in deployment.engine_nodes]
        assert all(limiter is not None for limiter in limiters)
        assert len(set(map(id, limiters))) == 3

    def test_caches_only_when_configured(self):
        without = deploy(2)
        assert all(node.response_cache is None
                   for node in without.engine_nodes)
        with_cache = deploy(2, cache=128)
        assert all(node.response_cache is not None
                   and node.response_cache.capacity == 128
                   for node in with_cache.engine_nodes)
        assert all(node.partial_cache is not None
                   for node in with_cache.engine_nodes)

    def test_clients_are_pinned_to_their_routed_replica(self):
        deployment = deploy(3)
        addresses = replica_addresses(3)
        for node in deployment.nodes:
            assert node.engine_address == \
                route_to_replica(node.address, addresses)


class TestEndToEnd:
    def test_search_page_identical_at_any_replica_count(self):
        query = "symptoms cancer treatment"
        baseline = deploy(1).node(0).search(query)
        assert baseline.ok and baseline.hits
        for replicas in (2, 3):
            result = deploy(replicas, cache=64).node(0).search(query)
            assert result.ok
            assert result.hits == baseline.hits, \
                f"page diverged at {replicas} replicas"

    def test_engine_log_merges_every_replica_in_time_order(self):
        deployment = deploy(3)
        for index, query in enumerate(["symptoms cancer", "cheap flights",
                                       "football scores"]):
            deployment.node(index % len(deployment.nodes)).search(query)
        per_replica = sum(len(node.tap.entries)
                          for node in deployment.engine_nodes)
        merged = deployment.engine_log
        assert len(merged) == per_replica
        stamps = [entry.timestamp for entry in merged]
        assert stamps == sorted(stamps)
        # The tier genuinely spread load: with 6 node identities routed
        # by crc32 across 3 replicas, at least two replicas served.
        served = [node for node in deployment.engine_nodes
                  if node.tap.entries]
        assert len(served) >= 2

    def test_merged_log_breaks_same_timestamp_ties_deterministically(self):
        # Several replicas serving in the same simulated instant is the
        # norm under the discrete-event clock. The merge key is
        # (timestamp, replica index, arrival rank) — inject colliding
        # timestamps directly into the taps and pin the merged order.
        deployment = deploy(3)
        replicas = deployment.engine_nodes
        replicas[2].tap.record("id-c", "query c", timestamp=5.0)
        replicas[0].tap.record("id-a1", "query a1", timestamp=5.0)
        replicas[0].tap.record("id-a2", "query a2", timestamp=5.0)
        replicas[1].tap.record("id-b", "query b", timestamp=5.0)
        merged = [entry.identity for entry in deployment.engine_log
                  if entry.timestamp == 5.0]
        assert merged == ["id-a1", "id-a2", "id-b", "id-c"]
        # And the full merge is stable across repeated reads.
        assert [e.identity for e in deployment.engine_log] \
            == [e.identity for e in deployment.engine_log]
