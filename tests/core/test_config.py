"""Tests for CyclosaConfig validation."""

import pytest

from repro.core.config import CyclosaConfig


class TestConfig:
    def test_defaults_match_paper(self):
        config = CyclosaConfig()
        assert config.kmax == 7
        assert set(config.sensitive_topics) == {"health", "sex", "politics",
                                                "religion"}

    def test_invalid_kmax(self):
        with pytest.raises(ValueError):
            CyclosaConfig(kmax=-1)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            CyclosaConfig(smoothing_alpha=0.0)

    def test_invalid_table_capacity(self):
        with pytest.raises(ValueError):
            CyclosaConfig(table_capacity=0)

    def test_custom_topics_allowed(self):
        config = CyclosaConfig(sensitive_topics=("health", "finances"))
        assert "finances" in config.sensitive_topics

    def test_empty_topic_name_rejected(self):
        with pytest.raises(ValueError):
            CyclosaConfig(sensitive_topics=("health", ""))
