"""Heterogeneous peer links (config.peer_heterogeneity_sigma)."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.metrics.latencystats import percentile


def _latency_samples(config, seed=81, queries=30):
    deployment = CyclosaNetwork.create(num_nodes=14, seed=seed,
                                       config=config, warmup_seconds=40)
    samples = []
    for index in range(queries):
        result = deployment.node(index % 4).search(
            f"heterogeneity probe {index}", k_override=1)
        if result.ok:
            samples.append(result.latency)
    return samples


class TestHeterogeneity:
    def test_engine_path_unaffected(self):
        """The pair override to the engine wins over the node's access
        model, so heterogeneity never slows the engine hop directly."""
        config = CyclosaConfig(peer_heterogeneity_sigma=1.0)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=82,
                                           config=config,
                                           warmup_seconds=30)
        model = deployment.network._latency_for(
            deployment.nodes[0].address,
            deployment.engine_node.address)
        assert model.median == config.engine_link_median

    def test_heterogeneity_widens_the_latency_spread(self):
        homogeneous = _latency_samples(CyclosaConfig())
        mixed = _latency_samples(
            CyclosaConfig(peer_heterogeneity_sigma=0.8))
        assert homogeneous and mixed

        def spread(samples):
            return (percentile(samples, 0.9) - percentile(samples, 0.1))

        assert spread(mixed) > spread(homogeneous)

    def test_all_queries_still_succeed(self):
        samples = _latency_samples(
            CyclosaConfig(peer_heterogeneity_sigma=0.8))
        assert len(samples) == 30
