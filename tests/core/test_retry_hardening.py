"""§VI-b retry-path hardening: every issued search terminates with an
explicit status, retries back off through fresh relays, and the real
query's relay set stays disjoint from the fake legs across retries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.faults.inject import install
from repro.faults.plan import (CrashAfterReceive, Delay, DenyAttestation,
                               Drop, FaultPlan, FORWARD_REQUESTS, MATCH_ALL)

TERMINAL = ("ok", "captcha", "no-peers", "relay-failure", "channel-failure")


def drop_forwards(node) -> None:
    """Make *node*'s host silently discard forward requests (§III)."""
    node._handle_forward = lambda ctx: None


def collected_search(deployment, index, query, **kwargs):
    """Issue a search via the raw node API and run it to completion;
    returns the full on_result dict (the facade hides relays/retries)."""
    holder = {}
    deployment.nodes[index].search(query, on_result=holder.update, **kwargs)
    deployment.run(300.0)
    return holder


class TestRetryPath:
    def test_timeout_blacklist_retry_success_under_churn(self):
        """Flaky relays and mid-run churn: the timeout → blacklist →
        retry machinery recovers and the result still arrives."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=4)
        deployment = CyclosaNetwork.create(num_nodes=12, seed=81,
                                           config=config, warmup_seconds=40)
        for node in deployment.nodes[6:]:
            drop_forwards(node)
        # Churn one silent relay out entirely mid-run.
        victim = deployment.nodes[6]
        victim.pss.stop()
        deployment.network.unregister(victim.address)
        client = deployment.nodes[0]
        results = [collected_search(deployment, 0, f"churn probe {i}",
                                    k_override=2) for i in range(6)]
        assert all(r["status"] in TERMINAL for r in results)
        assert sum(1 for r in results if r["status"] == "ok") >= 5
        assert client.stats.retries > 0
        assert client.stats.blacklisted_peers > 0
        assert client.outstanding_searches() == []

    def test_retry_exhaustion_ends_in_relay_failure(self):
        """Every relay is silent and the budget runs out: the search
        must end with ``relay-failure`` (or exhaust the view), never
        hang."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=1)
        deployment = CyclosaNetwork.create(num_nodes=8, seed=82,
                                           config=config, warmup_seconds=40)
        for node in deployment.nodes[1:]:
            drop_forwards(node)
        result = collected_search(deployment, 0, "doomed probe",
                                  k_override=1)
        assert result["status"] in ("relay-failure", "no-peers")
        assert result["retries"] >= 1
        assert deployment.nodes[0].outstanding_searches() == []

    def test_view_exhaustion_ends_in_no_peers(self):
        """The retry draw excludes every relay the search already used;
        when that covers the whole view, the search ends ``no-peers``."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=4, seed=83,
                                           config=config, warmup_seconds=40)
        for node in deployment.nodes[1:]:
            drop_forwards(node)
        # k=2 uses all 3 relays up front; the retry has nowhere to go.
        result = collected_search(deployment, 0, "exhausted probe",
                                  k_override=2)
        assert result["status"] == "no-peers"
        assert deployment.nodes[0].outstanding_searches() == []

    def test_channel_failure_when_attestation_denied_on_retry(self):
        """Channels exist from an earlier search, the relay goes
        silent, and the IAS refuses every new handshake: the retry
        cannot re-establish a channel and the search must end with the
        distinct ``channel-failure`` status instead of dropping."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=2)
        deployment = CyclosaNetwork.create(num_nodes=8, seed=84,
                                           config=config, warmup_seconds=40)
        first = collected_search(deployment, 0, "warm channels probe",
                                 k_override=1)
        assert first["status"] == "ok"
        relays = [n.address for n in deployment.nodes[1:]]
        installed = install(
            FaultPlan(faults=(DenyAttestation(nodes=tuple(relays)),)),
            deployment)
        for node in deployment.nodes[1:]:
            drop_forwards(node)
        result = collected_search(deployment, 0, "denied probe",
                                  k_override=1)
        installed.uninstall()
        assert result["status"] == "channel-failure"
        assert deployment.nodes[0].outstanding_searches() == []


class TestRelayDisjointness:
    def test_retries_never_reuse_fake_leg_relays(self):
        """§V: one record per relay — across every retry, the real
        query's relays and the fake legs' relays never intersect."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=4)
        deployment = CyclosaNetwork.create(num_nodes=12, seed=85,
                                           config=config, warmup_seconds=40)
        for node in deployment.nodes[5:]:
            drop_forwards(node)
        client = deployment.nodes[0]
        results = [collected_search(deployment, 0, f"disjoint probe {i}",
                                    k_override=3) for i in range(6)]
        assert any(r["retries"] > 0 for r in results)  # path exercised
        for result in results:
            assert not set(result["relays"]["real"]) & set(
                result["relays"]["fake"])
        assert client.stats.disjointness_violations == 0


class TestExactlyOnceUnderFaults:
    @settings(max_examples=8, deadline=None)
    @given(plan_seed=st.integers(0, 2 ** 16),
           drop_p=st.floats(0.0, 0.4),
           extra=st.floats(0.0, 1.0),
           crash=st.booleans())
    def test_on_result_fires_exactly_once_per_search(
            self, plan_seed, drop_p, extra, crash):
        """Whatever the injected plan does, every issued search fires
        ``on_result`` exactly once and none is left outstanding."""
        config = CyclosaConfig(relay_timeout=1.0, max_retries=2)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=86,
                                           config=config, warmup_seconds=40)
        faults = [Drop(match=MATCH_ALL, probability=drop_p),
                  Delay(match=FORWARD_REQUESTS, extra=extra,
                        probability=0.5)]
        if crash:
            faults.append(
                CrashAfterReceive(node=deployment.nodes[1].address))
        installed = install(
            FaultPlan(seed=plan_seed, faults=tuple(faults)), deployment)
        fired = []
        client = deployment.nodes[0]
        for index in range(3):
            client.search(f"property probe {index}",
                          on_result=lambda r: fired.append(r["search_id"]),
                          k_override=1)
            deployment.run(60.0)
        deployment.run(300.0)
        installed.uninstall()
        assert len(fired) == 3
        assert len(set(fired)) == 3  # exactly once each, never twice
        assert client.outstanding_searches() == []
