"""Integration-grade tests for CyclosaNode + CyclosaNetwork."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig


@pytest.fixture(scope="module")
def deployment():
    return CyclosaNetwork.create(num_nodes=10, seed=42, warmup_seconds=40)


class TestSearchFlow:
    def test_search_returns_relevant_results(self, deployment):
        result = deployment.node(0).search("flu symptoms treatment",
                                           k_override=2)
        assert result.ok
        assert result.hits
        assert all("web.example" in url for url in result.documents)

    def test_sensitive_query_gets_kmax(self, deployment):
        result = deployment.node(1).search("cancer chemotherapy")
        assert result.ok
        assert result.k == deployment.config.kmax

    def test_non_sensitive_fresh_query_gets_low_k(self, deployment):
        result = deployment.node(2).search("football playoffs tickets")
        assert result.ok
        assert result.k <= 2  # no history, not semantically sensitive

    def test_latency_is_positive_and_sane(self, deployment):
        result = deployment.node(3).search("laptop reviews", k_override=1)
        assert 0.1 < result.latency < 30.0

    def test_k_override(self, deployment):
        result = deployment.node(4).search("hotel booking", k_override=3)
        assert result.k == 3

    def test_repeated_query_linkability_raises_k(self, deployment):
        user = deployment.node(5)
        first = user.search("marathon training plan")
        for _ in range(2):
            user.search("marathon training plan")
        later = user.search("marathon training plan")
        assert later.k >= first.k
        assert later.k > 0


class TestUnlinkability:
    def test_engine_never_sees_requester_address(self, deployment):
        node = deployment.nodes[6]
        deployment.node(6).search("unique unlinkability probe", k_override=3)
        entries = [e for e in deployment.engine_log
                   if e.text == "unique unlinkability probe"]
        assert entries
        assert all(e.identity != node.address for e in entries)

    def test_fakes_reach_engine_from_distinct_relays(self, deployment):
        before = len(deployment.engine_log)
        deployment.node(7).search("distinct relay probe", k_override=3)
        new_entries = deployment.engine_log[before:]
        identities = [e.identity for e in new_entries]
        assert len(identities) == len(set(identities))
        assert len(identities) >= 3

    def test_fakes_marked_in_ground_truth(self, deployment):
        before = len(deployment.engine_log)
        deployment.node(8).search("ground truth probe", k_override=2)
        new_entries = deployment.engine_log[before:]
        reals = [e for e in new_entries if not e.is_fake]
        fakes = [e for e in new_entries if e.is_fake]
        assert len(reals) == 1 and reals[0].text == "ground truth probe"
        assert len(fakes) == 2


class TestRelayAccounting:
    def test_relays_store_forwarded_queries(self, deployment):
        sizes_before = [n.enclave.table_size() for n in deployment.nodes]
        deployment.node(0).search("brand new table entry", k_override=2)
        sizes_after = [n.enclave.table_size() for n in deployment.nodes]
        assert sum(sizes_after) > sum(sizes_before)

    def test_stats_track_activity(self, deployment):
        node = deployment.nodes[0]
        assert node.stats.queries_issued > 0
        total_relayed = sum(n.stats.relayed for n in deployment.nodes)
        assert total_relayed > 0


class TestDeploymentApi:
    def test_determinism(self):
        a = CyclosaNetwork.create(num_nodes=6, seed=7, warmup_seconds=30)
        b = CyclosaNetwork.create(num_nodes=6, seed=7, warmup_seconds=30)
        ra = a.node(0).search("flu symptoms", k_override=2)
        rb = b.node(0).search("flu symptoms", k_override=2)
        assert ra.latency == rb.latency
        assert ra.documents == rb.documents

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            CyclosaNetwork.create(num_nodes=1, seed=0)

    def test_run_advances_time(self, deployment):
        now = deployment.simulator.now
        deployment.run(5.0)
        assert deployment.simulator.now == pytest.approx(now + 5.0)

    def test_result_helpers(self, deployment):
        result = deployment.node(9).search("espresso machine", k_override=1)
        assert result.ok is (result.status == "ok")
        assert isinstance(result.documents, list)


class TestFailureHandling:
    def test_relay_churn_is_survivable(self):
        config = CyclosaConfig(relay_timeout=2.0, max_retries=3)
        deployment = CyclosaNetwork.create(num_nodes=8, seed=13,
                                           config=config, warmup_seconds=40)
        # Kill two relays abruptly (crash: no retirement).
        for victim in deployment.nodes[6:8]:
            victim.pss.stop()
            deployment.network.unregister(victim.address)
        outcomes = []
        for _ in range(6):
            outcomes.append(deployment.node(0).search(
                "resilience probe query", k_override=2, max_wait=120.0))
        assert any(result.ok for result in outcomes)
