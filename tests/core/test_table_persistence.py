"""Sealed persistence of the past-queries table across restarts."""

import random

import pytest

from repro.core.enclave import CyclosaEnclave
from repro.net import wire
from repro.sgx.enclave import EnclaveHost
from repro.sgx.sealing import SealingError, SealingService


@pytest.fixture
def platform():
    rng = random.Random(55)
    host = EnclaveHost(rng)
    sealing = SealingService(host.platform_id, rng)
    return rng, host, sealing


class TestSealedTable:
    def test_restart_roundtrip(self, platform):
        rng, host, sealing = platform
        enclave = host.create_enclave(CyclosaEnclave)
        enclave.seed_table(["query one", "query two", "query three"])
        blob = enclave.seal_table(sealing)

        # "Browser restart": destroy the enclave, create a fresh one.
        host.destroy_enclave(enclave)
        fresh = host.create_enclave(CyclosaEnclave)
        assert fresh.table_size() == 0
        restored = fresh.unseal_table(sealing, blob)
        assert restored == 3
        assert fresh.table_size() == 3

    def test_host_cannot_read_blob(self, platform):
        rng, host, sealing = platform
        enclave = host.create_enclave(CyclosaEnclave)
        enclave.seed_table(["other users secret query"])
        blob = enclave.seal_table(sealing)
        assert b"secret query" not in blob.ciphertext

    def test_different_build_cannot_unseal(self, platform):
        rng, host, sealing = platform

        class ForkedEnclave(CyclosaEnclave):
            ENCLAVE_VERSION = "2.0-fork"

        enclave = host.create_enclave(CyclosaEnclave)
        enclave.seed_table(["query"])
        blob = enclave.seal_table(sealing)
        forked = host.create_enclave(ForkedEnclave)
        with pytest.raises(SealingError):
            forked.unseal_table(sealing, blob)

    def test_different_platform_cannot_unseal(self, platform):
        rng, host, sealing = platform
        enclave = host.create_enclave(CyclosaEnclave)
        enclave.seed_table(["query"])
        blob = enclave.seal_table(sealing)

        other_rng = random.Random(66)
        other_host = EnclaveHost(other_rng)
        other_sealing = SealingService(other_host.platform_id, other_rng)
        other_enclave = other_host.create_enclave(CyclosaEnclave)
        with pytest.raises(SealingError):
            other_enclave.unseal_table(other_sealing, blob)

    def test_restore_merges_with_existing(self, platform):
        rng, host, sealing = platform
        enclave = host.create_enclave(CyclosaEnclave)
        enclave.seed_table(["old one", "old two"])
        blob = enclave.seal_table(sealing)
        fresh = host.create_enclave(CyclosaEnclave)
        fresh.seed_table(["new one", "old one"])  # overlap
        restored = fresh.unseal_table(sealing, blob)
        assert restored == 1  # only "old two" was new
        assert fresh.table_size() == 3


class TestNodeLevelPersistence:
    def test_node_api(self):
        from repro.core.client import CyclosaNetwork

        deployment = CyclosaNetwork.create(num_nodes=6, seed=91,
                                           warmup_seconds=30)
        node = deployment.nodes[0]
        size_before = node.enclave.table_size()
        assert size_before > 0  # trends-seeded
        blob = node.persist_table()
        # A restarted node on the same platform restores everything.
        fresh = deployment.nodes[0].host.create_enclave(
            type(node.enclave))
        restored = fresh.unseal_table(node.sealing, blob)
        assert restored == size_before
