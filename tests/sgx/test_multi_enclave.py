"""Multiple enclaves sharing one platform."""

import random

import pytest

from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy, attest_quote
from repro.sgx.enclave import Enclave, EnclaveHost, ecall
from repro.sgx.epc import EnclavePageCache, PAGE_SIZE


class WorkerEnclave(Enclave):
    ENCLAVE_VERSION = "1"
    BASE_FOOTPRINT_BYTES = 8192

    @ecall
    def remember(self, key, value):
        self.trusted[key] = value

    @ecall
    def recall(self, key):
        return self.trusted.get(key)


class OtherEnclave(WorkerEnclave):
    ENCLAVE_VERSION = "other"


@pytest.fixture
def host():
    return EnclaveHost(random.Random(17))


class TestSharedPlatform:
    def test_enclaves_have_isolated_state(self, host):
        first = host.create_enclave(WorkerEnclave)
        second = host.create_enclave(WorkerEnclave)
        first.remember("k", "first")
        second.remember("k", "second")
        assert first.recall("k") == "first"
        assert second.recall("k") == "second"

    def test_shared_epc_accounting(self, host):
        first = host.create_enclave(WorkerEnclave)
        second = host.create_enclave(WorkerEnclave)
        baseline = host.epc.committed_bytes
        first.trusted_alloc(10 * PAGE_SIZE)
        second.trusted_alloc(5 * PAGE_SIZE)
        assert host.epc.committed_bytes == baseline + 15 * PAGE_SIZE

    def test_one_enclave_can_page_out_its_neighbour(self):
        """EPC pressure is platform-wide: a bloated co-tenant slows
        *everyone's* memory accesses — the noisy-neighbour effect of
        SGX v1 machines."""
        host = EnclaveHost(random.Random(18),
                           epc=EnclavePageCache(
                               capacity_bytes=64 * PAGE_SIZE))
        victim = host.create_enclave(WorkerEnclave)
        cost_before = host.epc.access_cost(PAGE_SIZE)
        hog = host.create_enclave(WorkerEnclave)
        hog.trusted_alloc(200 * PAGE_SIZE)
        cost_after = host.epc.access_cost(PAGE_SIZE)
        assert cost_after > 10 * cost_before
        del victim

    def test_destroying_one_frees_pressure(self, host):
        small_epc_host = EnclaveHost(random.Random(19),
                                     epc=EnclavePageCache(
                                         capacity_bytes=64 * PAGE_SIZE))
        hog = small_epc_host.create_enclave(WorkerEnclave)
        hog.trusted_alloc(200 * PAGE_SIZE)
        assert small_epc_host.epc.paging_ratio() > 0
        small_epc_host.destroy_enclave(hog)
        assert small_epc_host.epc.paging_ratio() == 0.0

    def test_quotes_distinguish_co_tenant_builds(self, host):
        worker = host.create_enclave(WorkerEnclave)
        other = host.create_enclave(OtherEnclave)
        ias = IntelAttestationService()
        ias.provision_host(host)
        policy = MeasurementPolicy()
        policy.allow_class(WorkerEnclave)
        worker_quote = host.quote_report(worker.create_report(b"d"))
        other_quote = host.quote_report(other.create_report(b"d"))
        assert attest_quote(ias, policy, worker_quote).ok
        from repro.sgx.attestation import AttestationError

        with pytest.raises(AttestationError):
            attest_quote(ias, policy, other_quote)

    def test_same_platform_id_in_both_quotes(self, host):
        first = host.create_enclave(WorkerEnclave)
        second = host.create_enclave(OtherEnclave)
        ias = IntelAttestationService()
        ias.provision_host(host)
        quote_a = host.quote_report(first.create_report(b"x"))
        quote_b = host.quote_report(second.create_report(b"x"))
        assert quote_a.platform_id == quote_b.platform_id
        assert ias.verify(quote_a).ok and ias.verify(quote_b).ok
