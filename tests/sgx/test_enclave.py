"""Tests for repro.sgx.enclave: gates, isolation, costs, reports."""

import random

import pytest

from repro.sgx.enclave import (
    CROSSING_COST,
    CostMeter,
    Enclave,
    EnclaveHost,
    ecall,
)
from repro.sgx.errors import EnclaveError, EnclaveIsolationError


class KvEnclave(Enclave):
    """A tiny key-value enclave used across the tests."""

    ENCLAVE_VERSION = "1"
    BASE_FOOTPRINT_BYTES = 4096

    @ecall
    def put(self, key, value):
        self.trusted[key] = value

    @ecall
    def get(self, key):
        return self.trusted.get(key)

    @ecall
    def fetch_via_ocall(self, name):
        return self.ocall(name)

    def leak_attempt_from_untrusted(self):
        # NOT an ecall: direct access must fault.
        return self.trusted


class KvEnclaveV2(KvEnclave):
    ENCLAVE_VERSION = "2"


@pytest.fixture
def host():
    return EnclaveHost(random.Random(5))


@pytest.fixture
def enclave(host):
    return host.create_enclave(KvEnclave)


class TestIsolation:
    def test_ecall_reaches_trusted_state(self, enclave):
        enclave.put("a", 41)
        assert enclave.get("a") == 41

    def test_untrusted_access_raises(self, enclave):
        with pytest.raises(EnclaveIsolationError):
            enclave.leak_attempt_from_untrusted()

    def test_untrusted_property_access_raises(self, enclave):
        with pytest.raises(EnclaveIsolationError):
            _ = enclave.trusted

    def test_inside_flag(self, enclave):
        assert not enclave.inside

    def test_ocall_outside_ecall_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ocall("anything")

    def test_ocall_handler_cannot_see_trusted_state(self, host, enclave):
        observed = {}

        def handler():
            observed["inside"] = enclave.inside
            return "ok"

        host.register_ocall("probe", handler)
        assert enclave.fetch_via_ocall("probe") == "ok"
        # During the ocall, execution is untrusted again.
        assert observed["inside"] is False

    def test_missing_ocall_handler(self, host, enclave):
        with pytest.raises(EnclaveError):
            enclave.fetch_via_ocall("unregistered")


class TestLifecycle:
    def test_destroyed_enclave_rejects_ecalls(self, host, enclave):
        host.destroy_enclave(enclave)
        with pytest.raises(EnclaveError):
            enclave.get("a")

    def test_destroy_wipes_trusted_state(self, host, enclave):
        enclave.put("secret", "s3cr3t")
        host.destroy_enclave(enclave)
        assert enclave._trusted == {}

    def test_destroy_releases_epc(self, host, enclave):
        assert host.epc.committed_bytes > 0
        host.destroy_enclave(enclave)
        assert host.epc.committed_bytes == 0

    def test_non_enclave_class_rejected(self, host):
        class NotAnEnclave:
            pass

        with pytest.raises(EnclaveError):
            host.create_enclave(NotAnEnclave)

    def test_enclaves_listing(self, host, enclave):
        assert enclave in host.enclaves()


class TestMeasurement:
    def test_stable_per_class(self):
        assert KvEnclave.measurement() == KvEnclave.measurement()

    def test_version_changes_measurement(self):
        assert KvEnclave.measurement() != KvEnclaveV2.measurement()

    def test_different_classes_differ(self):
        class OtherEnclave(Enclave):
            ENCLAVE_VERSION = "1"

        assert KvEnclave.measurement() != OtherEnclave.measurement()


class TestCostModel:
    def test_ecall_charges_crossings(self, host, enclave):
        host.meter.take()
        enclave.get("a")
        assert host.meter.take() >= 2 * CROSSING_COST

    def test_ocall_charges_extra_crossings(self, host, enclave):
        host.register_ocall("noop", lambda: None)
        host.meter.take()
        enclave.fetch_via_ocall("noop")
        assert host.meter.take() >= 4 * CROSSING_COST

    def test_charge_crypto_scales_with_bytes(self, host, enclave):
        enclave.put("x", 1)  # enter once so charge_crypto usable inside...
        host.meter.take()
        enclave.charge_crypto(0, operations=0)
        zero = host.meter.take()
        enclave.charge_crypto(1_000_000, operations=1)
        assert host.meter.take() > zero

    def test_charge_crypto_rejects_negative(self, enclave):
        with pytest.raises(ValueError):
            enclave.charge_crypto(-1)

    def test_meter_take_resets(self):
        meter = CostMeter()
        meter.charge(1.0)
        assert meter.take() == 1.0
        assert meter.take() == 0.0
        assert meter.total == 1.0

    def test_meter_rejects_negative(self):
        with pytest.raises(ValueError):
            CostMeter().charge(-0.1)

    def test_working_set_validation(self, enclave):
        with pytest.raises(ValueError):
            enclave.set_touched_bytes_per_call(0)


class TestReports:
    def test_report_binds_measurement_and_data(self, enclave):
        report = enclave.create_report(b"report-data")
        assert report.measurement == KvEnclave.measurement()
        assert report.report_data == b"report-data"
        assert enclave._verify_report_mac(report)

    def test_forged_report_mac_fails(self, enclave):
        report = enclave.create_report(b"data")
        forged = type(report)(
            enclave_id=report.enclave_id,
            measurement=report.measurement,
            report_data=b"other",
            mac=report.mac)
        assert not enclave._verify_report_mac(forged)

    def test_quote_roundtrip(self, host, enclave):
        report = enclave.create_report(b"data")
        quote = host.quote_report(report)
        assert quote.measurement == KvEnclave.measurement()
        assert quote.platform_id == host.platform_id

    def test_quote_of_foreign_report_rejected(self, host, enclave):
        other_host = EnclaveHost(random.Random(6))
        other = other_host.create_enclave(KvEnclave)
        report = other.create_report(b"data")
        with pytest.raises(EnclaveError):
            host.quote_report(report)
