"""Tests for repro.sgx.epc: accounting and the paging cliff."""

import pytest
from hypothesis import given, strategies as st

from repro.sgx.epc import (
    DEFAULT_EPC_BYTES,
    EnclavePageCache,
    EpcError,
    PAGE_SIZE,
    PAGED_ACCESS_COST,
    RESIDENT_ACCESS_COST,
)


@pytest.fixture
def epc():
    cache = EnclavePageCache(capacity_bytes=1024 * PAGE_SIZE)
    cache.register(1)
    return cache


class TestAccounting:
    def test_default_capacity_is_128mb(self):
        assert EnclavePageCache().capacity_bytes == DEFAULT_EPC_BYTES

    def test_allocation_rounds_to_pages(self, epc):
        epc.allocate(1, 1)
        assert epc.usage(1) == PAGE_SIZE

    def test_allocate_zero_is_noop(self, epc):
        epc.allocate(1, 0)
        assert epc.usage(1) == 0

    def test_free_returns_pages(self, epc):
        epc.allocate(1, 10 * PAGE_SIZE)
        epc.free(1, 4 * PAGE_SIZE)
        assert epc.usage(1) == 6 * PAGE_SIZE

    def test_over_free_rejected(self, epc):
        epc.allocate(1, PAGE_SIZE)
        with pytest.raises(EpcError):
            epc.free(1, 2 * PAGE_SIZE)

    def test_negative_sizes_rejected(self, epc):
        with pytest.raises(EpcError):
            epc.allocate(1, -1)
        with pytest.raises(EpcError):
            epc.free(1, -1)

    def test_unregistered_enclave_rejected(self, epc):
        with pytest.raises(EpcError):
            epc.allocate(99, PAGE_SIZE)
        with pytest.raises(EpcError):
            epc.usage(99)

    def test_double_register_rejected(self, epc):
        with pytest.raises(EpcError):
            epc.register(1)

    def test_release_frees_everything(self, epc):
        epc.allocate(1, 100 * PAGE_SIZE)
        epc.release(1)
        assert epc.committed_pages == 0

    def test_multiple_enclaves_share_pool(self, epc):
        epc.register(2)
        epc.allocate(1, 10 * PAGE_SIZE)
        epc.allocate(2, 20 * PAGE_SIZE)
        assert epc.committed_pages == 30


class TestPagingCliff:
    def test_no_paging_under_capacity(self, epc):
        epc.allocate(1, 1000 * PAGE_SIZE)
        assert epc.paging_ratio() == 0.0

    def test_paging_over_capacity(self, epc):
        epc.allocate(1, 2048 * PAGE_SIZE)
        assert epc.paging_ratio() == pytest.approx(0.5)

    def test_overcommit_allowed(self, epc):
        # SGX v1 over-commits and pages; allocation never fails.
        epc.allocate(1, 10_000 * PAGE_SIZE)
        assert epc.usage(1) == 10_000 * PAGE_SIZE

    def test_access_cost_resident(self, epc):
        epc.allocate(1, 10 * PAGE_SIZE)
        assert epc.access_cost(PAGE_SIZE) == pytest.approx(RESIDENT_ACCESS_COST)

    def test_access_cost_cliff(self, epc):
        epc.allocate(1, 2048 * PAGE_SIZE)  # 50 % paged
        cost = epc.access_cost(PAGE_SIZE)
        assert cost > 100 * RESIDENT_ACCESS_COST
        assert cost < PAGED_ACCESS_COST

    def test_access_cost_scales_with_bytes(self, epc):
        assert (epc.access_cost(10 * PAGE_SIZE)
                == pytest.approx(10 * epc.access_cost(PAGE_SIZE)))

    def test_cyclosa_enclave_fits_without_paging(self):
        # The §V-F claim: a 1.7 MB enclave never pages on a 128 MB EPC.
        epc = EnclavePageCache()
        epc.register(1)
        epc.allocate(1, 1_700_000)
        assert epc.paging_ratio() == 0.0

    @given(st.integers(min_value=0, max_value=4096))
    def test_property_ratio_bounds(self, pages):
        epc = EnclavePageCache(capacity_bytes=1024 * PAGE_SIZE)
        epc.register(1)
        epc.allocate(1, pages * PAGE_SIZE)
        assert 0.0 <= epc.paging_ratio() < 1.0

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=20))
    def test_property_alloc_free_balance(self, sizes):
        epc = EnclavePageCache(capacity_bytes=1024 * PAGE_SIZE)
        epc.register(1)
        for size in sizes:
            epc.allocate(1, size * PAGE_SIZE)
        for size in sizes:
            epc.free(1, size * PAGE_SIZE)
        assert epc.usage(1) == 0
