"""Tests for repro.sgx.attestation: quotes, IAS, measurement pinning."""

import random

import pytest

from repro.sgx.attestation import (
    AttestationError,
    IntelAttestationService,
    MeasurementPolicy,
    Quote,
    QuoteStatus,
    attest_quote,
)
from repro.sgx.enclave import Enclave, EnclaveHost, ecall


class AttestedEnclave(Enclave):
    ENCLAVE_VERSION = "1"
    BASE_FOOTPRINT_BYTES = 4096

    @ecall
    def ping(self):
        return "pong"


class RogueEnclave(Enclave):
    ENCLAVE_VERSION = "666"
    BASE_FOOTPRINT_BYTES = 4096


@pytest.fixture
def host():
    return EnclaveHost(random.Random(3))


@pytest.fixture
def ias(host):
    service = IntelAttestationService()
    service.provision_host(host)
    return service


@pytest.fixture
def policy():
    policy = MeasurementPolicy()
    policy.allow_class(AttestedEnclave)
    return policy


@pytest.fixture
def quote(host):
    enclave = host.create_enclave(AttestedEnclave)
    return host.quote_report(enclave.create_report(b"bound-data"))


class TestIasVerification:
    def test_genuine_quote_ok(self, ias, quote):
        assert ias.verify(quote).status is QuoteStatus.OK

    def test_unknown_platform(self, quote):
        empty_ias = IntelAttestationService()
        assert (empty_ias.verify(quote).status
                is QuoteStatus.UNKNOWN_PLATFORM)

    def test_revoked_platform(self, ias, host, quote):
        ias.revoke(host.platform_id)
        assert ias.verify(quote).status is QuoteStatus.GROUP_REVOKED

    def test_forged_signature(self, ias, quote):
        forged = Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=b"tampered",  # signature no longer matches
            signature=quote.signature)
        assert ias.verify(forged).status is QuoteStatus.SIGNATURE_INVALID

    def test_signature_from_wrong_platform(self, ias, host, quote):
        other_host = EnclaveHost(random.Random(4))
        ias.provision_host(other_host)
        cross = Quote(
            platform_id=other_host.platform_id,
            measurement=quote.measurement,
            report_data=quote.report_data,
            signature=quote.signature)  # signed by the first platform
        assert ias.verify(cross).status is QuoteStatus.SIGNATURE_INVALID


class TestRelyingPartyGate:
    def test_accepts_known_measurement(self, ias, policy, quote):
        report = attest_quote(ias, policy, quote)
        assert report.ok

    def test_rejects_unknown_measurement(self, ias, host, policy):
        rogue = host.create_enclave(RogueEnclave)
        quote = host.quote_report(rogue.create_report(b"d"))
        # IAS says genuine (the platform is real), but the measurement
        # is not a known CYCLOSA build — the relying party must refuse.
        assert ias.verify(quote).ok
        with pytest.raises(AttestationError):
            attest_quote(ias, policy, quote)

    def test_rejects_ias_failure(self, policy, quote):
        with pytest.raises(AttestationError):
            attest_quote(IntelAttestationService(), policy, quote)

    def test_policy_allow_raw_measurement(self, ias, quote):
        policy = MeasurementPolicy([quote.measurement])
        assert attest_quote(ias, policy, quote).ok

    def test_empty_policy_permits_nothing(self):
        assert not MeasurementPolicy().permits(b"anything")
