"""Tests for repro.sgx.sealing."""

import random

import pytest

from repro.sgx.sealing import SealingError, SealingService


MEASUREMENT_A = b"a" * 32
MEASUREMENT_B = b"b" * 32


@pytest.fixture
def service():
    return SealingService(platform_id=1, rng=random.Random(2))


class TestSealing:
    def test_roundtrip(self, service):
        blob = service.seal(MEASUREMENT_A, b"table-contents")
        assert service.unseal(MEASUREMENT_A, blob) == b"table-contents"

    def test_other_measurement_cannot_unseal(self, service):
        blob = service.seal(MEASUREMENT_A, b"secret")
        with pytest.raises(SealingError):
            service.unseal(MEASUREMENT_B, blob)

    def test_other_platform_cannot_unseal(self, service):
        other = SealingService(platform_id=2, rng=random.Random(3))
        blob = service.seal(MEASUREMENT_A, b"secret")
        with pytest.raises(SealingError):
            other.unseal(MEASUREMENT_A, blob)

    def test_same_platform_id_different_fuse_secret(self, service):
        # Even an attacker that forges the platform id cannot unseal
        # without the per-CPU fused secret.
        impostor = SealingService(platform_id=1, rng=random.Random(99))
        blob = service.seal(MEASUREMENT_A, b"secret")
        with pytest.raises(SealingError):
            impostor.unseal(MEASUREMENT_A, blob)

    def test_tampered_blob_rejected(self, service):
        blob = service.seal(MEASUREMENT_A, b"secret")
        tampered = type(blob)(
            measurement=blob.measurement,
            platform_id=blob.platform_id,
            ciphertext=blob.ciphertext[:-1] + bytes([blob.ciphertext[-1] ^ 1]))
        with pytest.raises(SealingError):
            service.unseal(MEASUREMENT_A, tampered)

    def test_mislabeled_measurement_rejected(self, service):
        # Swapping the public metadata must not redirect the blob.
        blob = service.seal(MEASUREMENT_A, b"secret")
        relabeled = type(blob)(
            measurement=MEASUREMENT_B,
            platform_id=blob.platform_id,
            ciphertext=blob.ciphertext)
        with pytest.raises(SealingError):
            service.unseal(MEASUREMENT_B, relabeled)

    def test_seal_is_randomised(self, service):
        rng = random.Random(5)
        first = service.seal(MEASUREMENT_A, b"same", rng=rng)
        second = service.seal(MEASUREMENT_A, b"same", rng=rng)
        assert first.ciphertext != second.ciphertext
