"""Sharded TF-IDF: the byte-identity invariant and replica routing.

The whole engine scale-out rests on one promise (see
:mod:`repro.searchengine.sharding`): the merged sharded top-k is
byte-identical to the unsharded engine's top-k at any shard count.
These tests pin that promise in-process, for plain and OR queries,
including a Hypothesis sweep over random term combinations.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine, SearchHit
from repro.searchengine.sharding import (
    ShardedSearchEngine,
    build_shard_engines,
    merge_partials,
    replica_addresses,
    route_to_replica,
    shard_documents,
    shard_of,
)

QUERIES = [
    "symptoms cancer treatment",
    "cheap flights travel hotel",
    "symptoms cancer OR football league",
    "vaccine OR mortgage OR laptop",
    "nosuchterm whatsoever",
]

#: Terms the Hypothesis sweep draws from — a mix of head terms from
#: several topics plus one guaranteed non-term.
TERM_POOL = ["symptoms", "cancer", "treatment", "football", "laptop",
             "mortgage", "vaccine", "hotel", "recipe", "zzzunknown"]


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(docs_per_topic=40, seed=7)


@pytest.fixture(scope="module")
def reference(corpus):
    return SearchEngine(corpus)


class TestPartition:
    def test_every_document_in_exactly_one_shard(self, corpus):
        shards = shard_documents(corpus, 3)
        seen = [doc.doc_id for shard in shards for doc in shard]
        assert sorted(seen) == [doc.doc_id for doc in corpus.documents]
        for index, shard in enumerate(shards):
            assert all(shard_of(doc.doc_id, 3) == index for doc in shard)

    def test_single_shard_is_the_whole_corpus(self, corpus):
        (shard,) = shard_documents(corpus, 1)
        assert [d.doc_id for d in shard] == \
            [d.doc_id for d in corpus.documents]

    def test_invalid_shard_count_rejected(self, corpus):
        with pytest.raises(ValueError):
            shard_documents(corpus, 0)

    def test_single_shard_engine_matches_reference(self, corpus, reference):
        # build_shard_engines(N=1) must reproduce the plain constructor
        # exactly — the global-IDF plumbing is a no-op at one shard.
        (engine,) = build_shard_engines(corpus, 1)
        for query in QUERIES:
            assert engine.search(query) == reference.search(query)


class TestByteIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    def test_search_identical_at_any_shard_count(self, corpus, reference,
                                                 num_shards):
        sharded = ShardedSearchEngine(corpus, num_shards)
        for query in QUERIES:
            assert sharded.search(query) == reference.search(query), \
                f"divergence at N={num_shards} for {query!r}"

    def test_topk_override_respected(self, corpus, reference):
        sharded = ShardedSearchEngine(corpus, 3)
        assert sharded.search(QUERIES[0], topk=4) == \
            reference.search(QUERIES[0], topk=4)

    def test_search_batch_matches_individual_searches(self, corpus):
        sharded = ShardedSearchEngine(corpus, 3)
        batch = sharded.search_batch(QUERIES + QUERIES)
        assert batch == [sharded.search(q) for q in QUERIES + QUERIES]

    @settings(max_examples=25, deadline=None)
    @given(terms=st.lists(st.sampled_from(TERM_POOL), min_size=1,
                          max_size=4),
           num_shards=st.integers(min_value=2, max_value=7))
    def test_identity_over_random_term_combinations(self, corpus, reference,
                                                    terms, num_shards):
        query = " ".join(terms)
        sharded = ShardedSearchEngine(corpus, num_shards)
        assert sharded.search(query) == reference.search(query)

    def test_document_lookup_resolves_through_owning_shard(self, corpus):
        sharded = ShardedSearchEngine(corpus, 4)
        doc = corpus.documents[13]
        assert sharded.document(doc.doc_id) == doc


class TestMergePartials:
    def test_orders_by_score_then_doc_id(self):
        mk = lambda d, s: SearchHit(doc_id=d, url=f"u{d}", score=s,
                                    snippet_terms=())
        merged = merge_partials(
            [[mk(4, 1.0), mk(9, 0.5)], [mk(2, 1.0), mk(7, 2.0)]], topk=3)
        assert [(h.doc_id, h.score) for h in merged] == \
            [(7, 2.0), (2, 1.0), (4, 1.0)]

    def test_truncates_to_topk(self):
        mk = lambda d, s: SearchHit(doc_id=d, url=f"u{d}", score=s,
                                    snippet_terms=())
        merged = merge_partials([[mk(i, float(i)) for i in range(5)]],
                                topk=2)
        assert len(merged) == 2


class TestReplicaRouting:
    def test_replica_zero_keeps_the_historical_address(self):
        assert replica_addresses(1) == ["engine"]
        assert replica_addresses(3) == ["engine", "engine1", "engine2"]

    def test_invalid_replica_count_rejected(self):
        with pytest.raises(ValueError):
            replica_addresses(0)

    def test_routing_is_stable_and_total(self):
        addresses = replica_addresses(4)
        for identity in ("node00", "node07", "client-a", "relay3"):
            first = route_to_replica(identity, addresses)
            assert first in addresses
            assert all(route_to_replica(identity, addresses) == first
                       for _ in range(5))

    def test_routing_spreads_identities(self):
        addresses = replica_addresses(4)
        routed = {route_to_replica(f"node{i:02d}", addresses)
                  for i in range(64)}
        assert len(routed) > 1

    def test_empty_address_list_rejected(self):
        with pytest.raises(ValueError):
            route_to_replica("node00", [])
