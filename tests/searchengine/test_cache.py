"""Tests for the engine tier's bounded LRU result cache."""

import pytest

from repro.searchengine.cache import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        found, value = cache.get("q")
        assert (found, value) == (False, None)
        cache.put("q", [1, 2])
        found, value = cache.get("q")
        assert (found, value) == (True, [1, 2])

    def test_put_overwrites_existing_key(self):
        cache = ResultCache(4)
        cache.put("q", "old")
        cache.put("q", "new")
        assert cache.get("q") == (True, "new")
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_clear_empties_entries(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") == (False, None)


class TestLruEviction:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_size_never_exceeds_capacity(self):
        cache = ResultCache(3)
        for index in range(10):
            cache.put(index, index)
            assert len(cache) <= 3
        assert cache.evictions == 7

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.evictions == 0
        assert len(cache) == 2


class TestStats:
    def test_counters_track_traffic(self):
        cache = ResultCache(2)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats() == {
            "capacity": 2, "size": 2,
            "hits": 1, "misses": 1, "evictions": 1,
        }
