"""Wire-level tests of the sharded engine replica tier.

The in-process byte-identity lives in ``test_sharding.py``; here the
same computation is distributed across :class:`SearchEngineNode`
replicas over the simulated transport — coordinator scatter-gather,
sealed sibling channels, batching, caching and the degrade path when a
sibling goes silent.
"""

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode
from repro.searchengine.cache import ResultCache
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.searchengine.sharding import build_shard_engines, replica_addresses

QUERIES = [
    "symptoms cancer treatment",
    "cheap flights travel hotel",
    "symptoms cancer OR football league",
]


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(docs_per_topic=12, seed=1)


def build_tier(corpus, num_replicas, batch_window=0.0, cache_size=None,
               seed=3):
    """A ready-to-serve replica tier on a fresh simulator: channels
    between all replica pairs are established during warm-up."""
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.005))
    addresses = replica_addresses(num_replicas)
    if num_replicas == 1:
        engines = [SearchEngine(corpus)]
    else:
        engines = build_shard_engines(corpus, num_replicas)
    nodes = [
        SearchEngineNode(
            net, engines[index], rng, address=addresses[index],
            processing=ConstantLatency(0.05),
            cluster=addresses if num_replicas > 1 else None,
            response_cache=(ResultCache(cache_size) if cache_size else None),
            partial_cache=(ResultCache(cache_size)
                           if cache_size and num_replicas > 1 else None),
            batch_window=batch_window,
            shard_timeout=1.0)
        for index in range(num_replicas)
    ]
    for first in nodes:
        for second in nodes:
            if first is not second:
                first.tls.establish(second.address,
                                    on_ready=lambda channel: None)
    sim.run(until=2.0)
    return sim, net, nodes


def fire(sim, net, target, queries, start=0.0, spacing=0.0):
    """Send plain ``search`` requests and collect the result pages in
    send order."""
    client = NetNode(net, f"client-{id(queries) % 997}")
    replies = {}

    def send(index, query):
        client.request(target, {"query": query, "meta": {}},
                       lambda response, index=index:
                       replies.__setitem__(index, response),
                       timeout=60.0, kind="search")

    for index, query in enumerate(queries):
        sim.post(start + index * spacing, lambda i=index, q=query: send(i, q))
    sim.run()
    assert len(replies) == len(queries), "a search never completed"
    return [replies[index] for index in range(len(queries))]


@pytest.fixture(scope="module")
def reference_pages(corpus):
    sim, net, _ = build_tier(corpus, 1)
    return fire(sim, net, "engine", QUERIES)


class TestScatterGather:
    @pytest.mark.parametrize("num_replicas", [2, 3])
    def test_pages_identical_to_single_node(self, corpus, reference_pages,
                                            num_replicas):
        sim, net, _ = build_tier(corpus, num_replicas)
        pages = fire(sim, net, "engine", QUERIES)
        assert [p["hits"] for p in pages] == \
            [p["hits"] for p in reference_pages]
        assert all(p["status"] == "ok" for p in pages)

    def test_every_replica_coordinates_identically(self, corpus,
                                                   reference_pages):
        for address in replica_addresses(3):
            sim, net, _ = build_tier(corpus, 3)
            pages = fire(sim, net, address, QUERIES)
            assert [p["hits"] for p in pages] == \
                [p["hits"] for p in reference_pages]

    def test_sibling_exchange_is_sealed(self, corpus):
        sim, net, nodes = build_tier(corpus, 2)
        seen = []
        original = nodes[1].handle_request

        def spy(ctx):
            if ctx.request.kind == "shard.req":
                seen.append(ctx.request.payload)
            original(ctx)

        nodes[1].handle_request = spy
        fire(sim, net, "engine", QUERIES[:1])
        assert seen, "coordinator never consulted its sibling"
        assert all(isinstance(payload, bytes) for payload in seen)


class TestBatching:
    def test_batched_pages_match_unbatched(self, corpus, reference_pages):
        sim, net, _ = build_tier(corpus, 3, batch_window=0.3)
        # All queries land inside one window (spacing 0.01 < 0.3).
        pages = fire(sim, net, "engine", QUERIES, spacing=0.01)
        assert [p["hits"] for p in pages] == \
            [p["hits"] for p in reference_pages]

    def test_duplicates_in_a_batch_are_ranked_once(self, corpus):
        sim, net, nodes = build_tier(corpus, 1, batch_window=0.3)
        coordinator = nodes[0]
        calls = []
        original = coordinator._result_page

        def counting(query, plans, plan_index, sibling_partials):
            calls.append(query)
            return original(query, plans, plan_index, sibling_partials)

        coordinator._result_page = counting
        query = QUERIES[0]
        pages = fire(sim, net, "engine", [query] * 4, spacing=0.01)
        assert calls == [query]
        assert all(p["hits"] == pages[0]["hits"] for p in pages)

    def test_batch_of_one_still_answers(self, corpus, reference_pages):
        sim, net, _ = build_tier(corpus, 2, batch_window=0.2)
        pages = fire(sim, net, "engine", QUERIES[:1])
        assert pages[0]["hits"] == reference_pages[0]["hits"]


class TestCaching:
    def test_repeat_query_hits_the_cache_with_same_page(self, corpus):
        sim, net, nodes = build_tier(corpus, 2, cache_size=64)
        query = QUERIES[0]
        pages = fire(sim, net, "engine", [query] * 3, spacing=2.0)
        assert nodes[0].response_cache.hits >= 2
        assert all(p["hits"] == pages[0]["hits"] for p in pages)

    def test_partial_cache_spares_repeat_shard_rankings(self, corpus):
        sim, net, nodes = build_tier(corpus, 2, cache_size=64)
        # Distinct coordinators, same query: replica "engine1" serves a
        # shard request for engine's round, then coordinates its own —
        # both rounds share the partial-cache entry.
        query = QUERIES[0]
        fire(sim, net, "engine", [query], start=0.0)
        fire(sim, net, "engine1", [query], start=10.0)
        assert nodes[1].partial_cache.hits >= 1


class TestDegrade:
    def test_silent_sibling_degrades_instead_of_hanging(self, corpus,
                                                        reference_pages):
        sim, net, nodes = build_tier(corpus, 3)
        # engine2 goes silent *after* the TLS warm-up: shard requests
        # reach it but are dropped on the floor.
        nodes[2].handle_request = lambda ctx: None
        pages = fire(sim, net, "engine", QUERIES)
        assert all(p["status"] == "ok" for p in pages)
        assert all(p["hits"] for p in pages)
        # The degraded pages only cover the two surviving shards, so at
        # least one query must diverge from the full-corpus reference.
        assert [p["hits"] for p in pages] != \
            [p["hits"] for p in reference_pages]

    def test_degraded_hits_come_from_surviving_shards(self, corpus):
        sim, net, nodes = build_tier(corpus, 3)
        nodes[2].handle_request = lambda ctx: None
        pages = fire(sim, net, "engine", QUERIES)
        for page in pages:
            assert all(hit["doc_id"] % 3 != 2 for hit in page["hits"])
