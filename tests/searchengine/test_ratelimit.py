"""Tests for the rate limiter / bot detection."""

import pytest

from repro.searchengine.ratelimit import RateLimiter, RateLimitVerdict


class TestRateLimiter:
    def test_under_limit_admitted(self):
        limiter = RateLimiter(max_per_window=10, window_seconds=3600)
        for second in range(10):
            assert limiter.check("id", float(second)) is RateLimitVerdict.ADMITTED

    def test_over_limit_captcha(self):
        limiter = RateLimiter(max_per_window=5, window_seconds=3600)
        for second in range(5):
            limiter.check("id", float(second))
        assert limiter.check("id", 6.0) is RateLimitVerdict.CAPTCHA

    def test_identities_independent(self):
        limiter = RateLimiter(max_per_window=2, window_seconds=3600)
        limiter.check("a", 0.0)
        limiter.check("a", 1.0)
        assert limiter.check("a", 2.0) is RateLimitVerdict.CAPTCHA
        assert limiter.check("b", 2.0) is RateLimitVerdict.ADMITTED

    def test_window_slides(self):
        limiter = RateLimiter(max_per_window=2, window_seconds=10,
                              captcha_cooldown=0.0)
        limiter.check("id", 0.0)
        limiter.check("id", 1.0)
        # Window drained: old entries have expired.
        assert limiter.check("id", 30.0) is RateLimitVerdict.ADMITTED

    def test_cooldown_blocks_even_after_drain(self):
        limiter = RateLimiter(max_per_window=2, window_seconds=10,
                              captcha_cooldown=100.0)
        limiter.check("id", 0.0)
        limiter.check("id", 1.0)
        limiter.check("id", 2.0)  # trips captcha until t=102
        assert limiter.check("id", 50.0) is RateLimitVerdict.CAPTCHA
        assert limiter.is_blocked("id", 50.0)
        assert limiter.check("id", 150.0) is RateLimitVerdict.ADMITTED

    def test_counters(self):
        limiter = RateLimiter(max_per_window=1, window_seconds=3600)
        limiter.check("id", 0.0)
        limiter.check("id", 1.0)
        limiter.check("id", 2.0)
        assert limiter.admitted("id") == 1
        assert limiter.rejected("id") == 2
        assert limiter.admitted("ghost") == 0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            RateLimiter(max_per_window=0)

    def test_hammering_proxy_stays_blocked(self):
        # The Fig 8d scenario: a proxy over the limit that keeps sending
        # never recovers (every burst renews the cooldown).
        limiter = RateLimiter(max_per_window=10, window_seconds=3600,
                              captcha_cooldown=600)
        time = 0.0
        verdicts = []
        for _ in range(200):
            verdicts.append(limiter.check("proxy", time))
            time += 30.0
        assert verdicts[-1] is RateLimitVerdict.CAPTCHA
        admitted = sum(v is RateLimitVerdict.ADMITTED for v in verdicts)
        assert admitted <= 15
