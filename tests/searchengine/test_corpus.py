"""Tests for the synthetic corpus."""

import pytest

from repro.datasets.vocabulary import ALL_TOPICS, build_topic_vocabularies
from repro.searchengine.corpus import build_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(docs_per_topic=20, doc_length=40, seed=9)


class TestCorpus:
    def test_size(self, corpus):
        assert len(corpus) == 20 * len(ALL_TOPICS)

    def test_topics_covered(self, corpus):
        for topic in ALL_TOPICS:
            assert len(corpus.by_topic(topic)) == 20

    def test_documents_mostly_on_topic(self, corpus):
        vocabularies = build_topic_vocabularies()
        for document in corpus.documents[:50]:
            own = sum(1 for t in document.tokens
                      if t in vocabularies[document.topic])
            assert own > len(document.tokens) * 0.5

    def test_cross_topic_noise_present(self, corpus):
        vocabularies = build_topic_vocabularies()
        other_hits = 0
        for document in corpus.documents:
            for token in document.tokens:
                for topic, vocabulary in vocabularies.items():
                    if topic != document.topic and token in vocabulary:
                        other_hits += 1
                        break
        assert other_hits > 0  # the polysemy source for Fig 6's losses

    def test_urls_unique(self, corpus):
        urls = [d.url for d in corpus.documents]
        assert len(urls) == len(set(urls))

    def test_title_terms(self, corpus):
        document = corpus.documents[0]
        assert 1 <= len(document.title_terms) <= 8
        assert len(set(document.title_terms)) == len(document.title_terms)
        assert set(document.title_terms) <= set(document.tokens)

    def test_deterministic(self):
        a = build_corpus(docs_per_topic=5, seed=3)
        b = build_corpus(docs_per_topic=5, seed=3)
        assert [d.tokens for d in a.documents] == [d.tokens for d in b.documents]
