"""Tests for the honest-but-curious query log tap."""

from repro.searchengine.adversary import QueryLogTap


class TestTap:
    def test_records_in_order(self):
        tap = QueryLogTap()
        tap.record("relay1", "query one", 1.0)
        tap.record("relay2", "query two", 2.0, true_user="u1", is_fake=True)
        assert len(tap) == 2
        assert tap.entries[0].identity == "relay1"
        assert tap.entries[1].is_fake

    def test_entries_returns_copy(self):
        tap = QueryLogTap()
        tap.record("a", "q", 0.0)
        entries = tap.entries
        entries.clear()
        assert len(tap) == 1

    def test_clear(self):
        tap = QueryLogTap()
        tap.record("a", "q", 0.0)
        tap.clear()
        assert len(tap) == 0

    def test_ground_truth_defaults(self):
        tap = QueryLogTap()
        tap.record("a", "q", 0.0)
        entry = tap.entries[0]
        assert entry.true_user is None
        assert not entry.is_fake
        assert entry.group_id is None
