"""Tests for the TF-IDF engine and OR semantics."""

import pytest

from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import OR_SEPARATOR, SearchEngine


@pytest.fixture(scope="module")
def engine():
    return SearchEngine(build_corpus(docs_per_topic=30, seed=2),
                        results_per_query=10)


class TestRankedRetrieval:
    def test_returns_topk(self, engine):
        hits = engine.search("symptoms treatment cancer")
        assert 0 < len(hits) <= 10

    def test_results_on_topic(self, engine):
        hits = engine.search("symptoms treatment cancer diagnosis")
        health = sum(1 for hit in hits
                     if engine.document(hit.doc_id).topic == "health")
        assert health >= len(hits) * 0.7

    def test_scores_descending(self, engine):
        hits = engine.search("football basketball league")
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self, engine):
        a = [h.doc_id for h in engine.search("flight hotel booking")]
        b = [h.doc_id for h in engine.search("flight hotel booking")]
        assert a == b

    def test_unknown_terms_empty(self, engine):
        assert engine.search("zzzzunknownzzzz") == []

    def test_empty_query(self, engine):
        assert engine.search("") == []

    def test_snippet_terms_matched(self, engine):
        hits = engine.search("symptoms cancer")
        for hit in hits[:3]:
            document = engine.document(hit.doc_id)
            for term in hit.snippet_terms:
                assert term in document.tokens

    def test_custom_topk(self, engine):
        assert len(engine.search("symptoms", topk=3)) <= 3


class TestOrSemantics:
    def test_native_or_merges_subqueries(self, engine):
        merged = engine.search(
            f"symptoms cancer{OR_SEPARATOR}football league")
        topics = {engine.document(hit.doc_id).topic for hit in merged}
        assert {"health", "sports"} <= topics

    def test_or_page_is_larger_but_bounded(self, engine):
        single = engine.search("symptoms cancer")
        merged = engine.search(
            f"symptoms cancer{OR_SEPARATOR}football{OR_SEPARATOR}recipe"
            f"{OR_SEPARATOR}mortgage")
        assert len(merged) > len(single)
        assert len(merged) <= 2 * engine.results_per_query

    def test_or_without_native_support_dilutes(self):
        engine = SearchEngine(build_corpus(docs_per_topic=30, seed=2),
                              or_support="none")
        merged = engine.search(f"symptoms cancer{OR_SEPARATOR}football league")
        # One big bag of words: single ranking, no per-subquery pages.
        assert len(merged) <= engine.results_per_query

    def test_invalid_or_support(self):
        with pytest.raises(ValueError):
            SearchEngine(build_corpus(docs_per_topic=2, seed=1),
                         or_support="maybe")

    def test_real_results_buried_in_or_page(self, engine):
        # The union competes for slots: not all of the real query's
        # top-10 survives into the merged page (Fig 6's root cause).
        real = {h.doc_id for h in engine.search("symptoms cancer")}
        merged = {h.doc_id for h in engine.search(
            f"symptoms cancer{OR_SEPARATOR}football league{OR_SEPARATOR}"
            f"recipe dessert{OR_SEPARATOR}mortgage loan")}
        assert real - merged  # someone got evicted
        assert real & merged  # but not everyone
