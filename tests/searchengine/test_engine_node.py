"""Tests for the search-engine network node."""

import random

import pytest

from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode
from repro.net.tls import SecureChannelManager, SignatureAuthenticator
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.searchengine.ratelimit import RateLimiter


class PlainClient(NetNode):
    pass


class TlsClient(NetNode):
    def __init__(self, network, address, rng):
        super().__init__(network, address)
        identity = IdentityKeyPair.generate(bits=512, rng=rng)
        self.tls = SecureChannelManager(
            self, SignatureAuthenticator(identity), rng)


@pytest.fixture
def setup():
    rng = random.Random(4)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    engine = SearchEngine(build_corpus(docs_per_topic=10, seed=1))
    node = SearchEngineNode(net, engine, rng,
                            processing=ConstantLatency(0.1))
    return rng, sim, net, node


class TestPlainSearch:
    def test_search_and_log(self, setup):
        rng, sim, net, engine_node = setup
        client = PlainClient(net, "client")
        replies = []
        client.request(
            "engine",
            {"query": "symptoms cancer", "meta": {"true_user": "u1"}},
            replies.append, kind="search")
        sim.run()
        assert replies and replies[0]["status"] == "ok"
        assert replies[0]["hits"]
        assert "title" in replies[0]["hits"][0]
        entry = engine_node.tap.entries[0]
        assert entry.identity == "client"
        assert entry.true_user == "u1"

    def test_processing_latency_applied(self, setup):
        rng, sim, net, engine_node = setup
        client = PlainClient(net, "client")
        replies = []
        client.request("engine", {"query": "symptoms"}, replies.append,
                       kind="search")
        sim.run()
        # processing + both link hops (allow float rounding)
        assert sim.now == pytest.approx(0.12)

    def test_rate_limited_search(self):
        rng = random.Random(5)
        sim = Simulator()
        net = Network(sim, rng, default_latency=ConstantLatency(0.001))
        engine = SearchEngine(build_corpus(docs_per_topic=5, seed=1))
        node = SearchEngineNode(
            net, engine, rng, processing=ConstantLatency(0.001),
            rate_limiter=RateLimiter(max_per_window=3, window_seconds=3600))
        client = PlainClient(net, "client")
        replies = []
        for _ in range(5):
            client.request("engine", {"query": "symptoms"}, replies.append,
                           kind="search")
        sim.run()
        statuses = [r["status"] for r in replies]
        assert statuses.count("ok") == 3
        assert statuses.count("captcha") == 2
        # Captcha'd requests are not logged (the engine never served them).
        assert len(node.tap) == 3


class TestTlsSearch:
    def test_sealed_roundtrip(self, setup):
        rng, sim, net, engine_node = setup
        client = TlsClient(net, "client", rng)
        client.tls.establish("engine", on_ready=lambda ch: None)
        sim.run()
        channel = client.tls.channel("engine")
        sealed = channel.seal(
            {"query": "symptoms cancer", "meta": {"true_user": "u9"}},
            rng=rng)
        replies = []
        client.request("engine", sealed, replies.append, kind="searchtls")
        sim.run()
        assert replies
        response = channel.open(bytes(replies[0]))
        assert response["status"] == "ok" and response["hits"]
        assert engine_node.tap.entries[0].true_user == "u9"

    def test_sealed_without_channel_dropped(self, setup):
        rng, sim, net, engine_node = setup
        client = PlainClient(net, "client")
        replies = []
        client.request("engine", b"garbage-bytes", replies.append,
                       kind="searchtls", timeout=2.0,
                       on_timeout=lambda: replies.append("timeout"))
        sim.run()
        assert replies == ["timeout"]
        assert len(engine_node.tap) == 0
