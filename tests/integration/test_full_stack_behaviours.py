"""Full-stack behaviours: concurrency, rate limits, accuracy property."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.datasets.vocabulary import build_topic_vocabularies


class TestConcurrentSearches:
    def test_interleaved_searches_correlate_correctly(self):
        """Five searches in flight at once from one node: every response
        must be matched to its own query (token correlation), never to
        a sibling's."""
        deployment = CyclosaNetwork.create(num_nodes=12, seed=51,
                                           warmup_seconds=40)
        node = deployment.nodes[0]
        queries = [f"concurrent probe {i} symptoms" for i in range(5)]
        results = {}
        for query in queries:
            node.search(query,
                        on_result=lambda r, q=query: results.__setitem__(q, r),
                        k_override=2)
        deployment.run(120.0)
        assert set(results) == set(queries)
        for query, result in results.items():
            assert result["status"] == "ok"
            assert result["query"] == query
            direct = [hit.url for hit in
                      deployment.engine_node.engine.search(query)]
            assert [hit["url"] for hit in result["hits"]] == direct

    def test_concurrent_searches_from_many_nodes(self):
        deployment = CyclosaNetwork.create(num_nodes=12, seed=52,
                                           warmup_seconds=40)
        results = []
        for index in range(8):
            deployment.nodes[index].search(
                f"multi node probe {index}", on_result=results.append,
                k_override=1)
        deployment.run(120.0)
        assert len(results) == 8
        assert all(r["status"] == "ok" for r in results)


class TestFullStackRateLimit:
    def test_cyclosa_traffic_stays_under_engine_limit(self):
        """With the engine's per-identity limit active, CYCLOSA traffic
        passes because each relay's identity stays under it."""
        config = CyclosaConfig(engine_rate_limit=50)
        deployment = CyclosaNetwork.create(num_nodes=12, seed=53,
                                           config=config,
                                           warmup_seconds=40)
        outcomes = []
        for index in range(15):
            outcomes.append(deployment.node(index % 6).search(
                f"rate limited probe {index}", k_override=2))
        assert all(result.ok for result in outcomes)
        limiter = deployment.engine_node.rate_limiter
        for node in deployment.nodes:
            assert limiter.rejected(node.address) == 0

    def test_single_identity_flood_gets_captcha(self):
        """Sanity contrast: one identity flooding the same limited
        engine trips the captcha (what happens to a central proxy)."""
        config = CyclosaConfig(engine_rate_limit=5)
        deployment = CyclosaNetwork.create(num_nodes=6, seed=54,
                                           config=config,
                                           warmup_seconds=40)
        limiter = deployment.engine_node.rate_limiter
        now = deployment.simulator.now
        verdicts = [limiter.check("flooding-proxy", now + i)
                    for i in range(10)]
        from repro.searchengine.ratelimit import RateLimitVerdict

        assert verdicts.count(RateLimitVerdict.CAPTCHA) == 5


class TestAccuracyProperty:
    @pytest.fixture(scope="class")
    def deployment(self):
        return CyclosaNetwork.create(num_nodes=10, seed=55,
                                     warmup_seconds=40)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_protected_results_equal_direct_results(self, deployment, data):
        """For any query assembled from the corpus vocabulary, CYCLOSA's
        protected answer is byte-identical to the direct answer — the
        perfect-accuracy invariant, as a property."""
        vocabularies = build_topic_vocabularies()
        topic = data.draw(st.sampled_from(sorted(vocabularies)))
        terms = data.draw(st.lists(
            st.sampled_from(list(vocabularies[topic].terms[:40])),
            min_size=1, max_size=3, unique=True))
        query = " ".join(terms)
        result = deployment.node(0).search(query, k_override=2)
        direct = [hit.url for hit in
                  deployment.engine_node.engine.search(query)]
        assert result.ok
        assert result.documents == direct
