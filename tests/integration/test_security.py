"""Security-analysis tests (§VI): the trust-boundary claims, verified.

Each test realises one of the paper's security-analysis scenarios and
asserts the system behaves as claimed — Byzantine relays learn nothing,
enclave bypass fails, replays are detected, the engine's view never
links users to queries.
"""

import random

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.enclave import CyclosaEnclave
from repro.net.tls import SecureChannel, TlsError, _directional_keys
from repro.sgx.attestation import AttestationError, attest_quote
from repro.sgx.enclave import Enclave, EnclaveHost
from repro.sgx.errors import EnclaveIsolationError


@pytest.fixture(scope="module")
def deployment():
    return CyclosaNetwork.create(num_nodes=10, seed=77, warmup_seconds=40)


class TestClientSide:
    """§VI-a: clients cannot bypass the SGX enclave."""

    def test_cannot_read_peer_channels_from_host(self, deployment):
        node = deployment.nodes[0]
        with pytest.raises(EnclaveIsolationError):
            _ = node.enclave.trusted["peer_channels"]

    def test_cannot_forge_forward_records_without_keys(self, deployment):
        # A host-level attacker crafts bytes and sends them as a forward
        # request; every relay drops them (no attested channel keys).
        attacker = deployment.nodes[0]
        victim = deployment.nodes[1]
        relayed_before = victim.stats.relayed
        attacker.request(victim.address, b"\x00" * 120,
                         on_reply=lambda r: pytest.fail("got a reply"),
                         kind="cyclosa.fwd")
        deployment.run(20.0)
        assert victim.stats.relayed == relayed_before

    def test_rogue_enclave_build_cannot_join(self, deployment):
        class BackdooredEnclave(CyclosaEnclave):
            ENCLAVE_VERSION = "1.0-evil"

        rng = random.Random(123)
        host = EnclaveHost(rng)
        rogue = host.create_enclave(BackdooredEnclave)
        deployment.services.ias.provision_host(host)  # platform is genuine
        quote = host.quote_report(rogue.create_report(b"ctx"))
        with pytest.raises(AttestationError):
            attest_quote(deployment.services.ias,
                         deployment.services.policy, quote)


class TestProxySide:
    """§VI-b: a malicious relay cannot read or tamper."""

    def test_relay_host_sees_only_ciphertext(self, deployment):
        # Capture what flows over the wire for a protected query.
        captured = []
        original_send = deployment.network.send

        def tap(src, dst, kind, payload, size_bytes=None):
            if kind.startswith("cyclosa.fwd"):
                captured.append(payload)
            return original_send(src, dst, kind, payload, size_bytes)

        deployment.network.send = tap
        try:
            deployment.node(0).search("super secret medical condition",
                                      k_override=2)
        finally:
            deployment.network.send = original_send
        assert captured
        for payload in captured:
            assert isinstance(payload, (bytes, bytearray))
            assert b"secret medical" not in bytes(payload)

    def test_replayed_record_rejected(self, deployment):
        # §VI-b: "a malicious process could replay user past queries on
        # the proxy. This threat can be limited by including a random
        # identifier in each message to detect a replay."
        node_a = deployment.nodes[2]
        node_b = deployment.nodes[3]
        # Build a legitimate record from a's enclave to b.
        ready = []
        node_a.peer_tls.establish(node_b.address,
                                  on_ready=lambda ch: ready.append(ch))
        deployment.run(10.0)
        assert node_a.enclave.has_peer_channel(node_b.address)
        batch = node_a.enclave.build_protected_batch(
            "replayable query", 0, [node_b.address])
        _, sealed = batch[0]
        first = node_b.enclave.unwrap_forward(node_a.address, sealed)
        assert first is not None
        replay = node_b.enclave.unwrap_forward(node_a.address, sealed)
        assert replay is None  # sequence-number replay protection

    def test_tampered_record_rejected(self, deployment):
        node_a = deployment.nodes[4]
        node_b = deployment.nodes[5]
        node_a.peer_tls.establish(node_b.address, on_ready=lambda ch: None)
        deployment.run(10.0)
        batch = node_a.enclave.build_protected_batch(
            "tamper target", 0, [node_b.address])
        _, sealed = batch[0]
        tampered = bytearray(sealed)
        tampered[-1] ^= 0x01
        assert node_b.enclave.unwrap_forward(
            node_a.address, bytes(tampered)) is None


class TestSearchEngineSide:
    """§VI-c + §III: honest-but-curious engine's view."""

    def test_engine_log_never_contains_requester_identity(self, deployment):
        deployment.node(6).search("engine view probe", k_override=3)
        node_addresses = {n.address for n in deployment.nodes}
        for entry in deployment.engine_log:
            if entry.text == "engine view probe":
                # The identity is *a* node, but relays were chosen from
                # peers — never the requester itself.
                assert entry.identity != deployment.nodes[6].address

    def test_real_and_fake_indistinguishable_by_size(self, deployment):
        """§IV: an observer of encrypted traffic cannot tell real from
        fake forwards by message size."""
        sizes = {"real": [], "fake": []}
        original_send = deployment.network.send

        def tap(src, dst, kind, payload, size_bytes=None):
            message = original_send(src, dst, kind, payload, size_bytes)
            return message

        node = deployment.nodes[7]
        ready_relays = [
            n.address for n in deployment.nodes
            if n.address != node.address
        ][:3]
        for relay in ready_relays:
            node.peer_tls.establish(relay, on_ready=lambda ch: None)
        deployment.run(10.0)
        usable = [r for r in ready_relays
                  if node.enclave.has_peer_channel(r)]
        if len(usable) >= 3:
            batch = node.enclave.build_protected_batch(
                "normal length query", 2, usable[:3])
            lengths = [len(sealed) for _, sealed in batch]
            # Records are padded to the envelope: identical wire sizes
            # for real and fake forwards.
            assert len(set(lengths)) == 1


class TestChannelPrimitives:
    def test_cross_channel_records_rejected(self):
        # A record sealed for one peer cannot be opened by another.
        send_a, recv_a = _directional_keys(b"1" * 32, initiator=True)
        send_c, recv_c = _directional_keys(b"2" * 32, initiator=False)
        alice = SecureChannel(peer="bob", send_key=send_a, recv_key=recv_a)
        carol = SecureChannel(peer="alice", send_key=send_c, recv_key=recv_c)
        record = alice.seal({"query": "for bob only"})
        with pytest.raises(TlsError):
            carol.open(record)
