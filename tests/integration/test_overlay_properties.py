"""Overlay-level statistical properties.

The paper's scalability story rests on two emergent properties of the
random-peer-sampling overlay: relay selection is (near-)uniform, so
load balances (Fig 8d, "CYCLOSA fairly balances the load between the
participating nodes"), and the view graph stays well-mixed (in-degree
concentrates; no node becomes a hub or an island).
"""

import random
from collections import Counter

import pytest

from repro.core.client import CyclosaNetwork
from repro.gossip.bootstrap_repo import PublicRepository
from repro.gossip.peer_sampling import PeerSamplingService
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode


class _Node(NetNode):
    def __init__(self, network, address, rng):
        super().__init__(network, address)
        self.pss = PeerSamplingService(self, rng, view_size=8, interval=2.0)

    def handle_request(self, ctx):
        self.pss.handle_request(ctx)


@pytest.fixture(scope="module")
def overlay():
    rng = random.Random(8)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.005))
    repo = PublicRepository(rng)
    nodes = []
    for index in range(30):
        node = _Node(net, f"n{index}", rng)
        node.pss.bootstrap(repo.sample(4))
        repo.publish(node.address)
        nodes.append(node)
    for node in nodes:
        node.pss.start()
    sim.run(until=200)
    return sim, nodes


class TestViewGraph:
    def test_indegree_concentrates(self, overlay):
        _sim, nodes = overlay
        indegree = Counter()
        for node in nodes:
            for address in node.pss.view.addresses():
                indegree[address] += 1
        counts = [indegree[n.address] for n in nodes]
        mean = sum(counts) / len(counts)
        # Well-mixed: nobody is a hub (>3x mean) or an island (0).
        assert min(counts) >= 1
        assert max(counts) <= 3 * mean

    def test_sampling_is_near_uniform(self, overlay):
        _sim, nodes = overlay
        source = nodes[0]
        draws = Counter()
        for _ in range(600):
            for peer in source.pss.random_peers(3):
                draws[peer] += 1
        # The node's own view rotates over time only via gossip; within
        # one instant, sampling is uniform over the current view.
        values = list(draws.values())
        assert max(values) <= 3 * (sum(values) / len(values))


class TestRelayLoadBalance:
    def test_relay_selection_spreads_load(self):
        deployment = CyclosaNetwork.create(num_nodes=20, seed=19,
                                           warmup_seconds=40)
        for index in range(40):
            deployment.node(index % 5).search(
                f"load balance probe {index}", k_override=3)
        relayed = sorted(n.stats.relayed for n in deployment.nodes)
        total = sum(relayed)
        assert total >= 40 * 3  # all records relayed somewhere
        # Fairness: the busiest relay carries well under half the load,
        # and at least 60 % of nodes participated.
        assert relayed[-1] < 0.35 * total
        participating = sum(1 for count in relayed if count > 0)
        assert participating >= 12
