"""Traffic-analysis resistance (§IV).

"An external observer analysing the (encrypted) network traffic has no
clue whether a node is sending out a real query, a fake one or whether
he is forwarding someone else's query, which is not the case of systems
where fake queries are generated at the relays (e.g., X-SEARCH or
PEAS). In these systems, even though the traffic is encrypted, an
adversary can infer whether an outgoing message is a real query or an
obfuscated one from the request size."
"""

import random

import pytest

from repro.core.enclave import RECORD_ENVELOPE_BYTES, CyclosaEnclave
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost


def paired(secret, a, b):
    send_a, recv_a = _directional_keys(secret, initiator=True)
    send_b, recv_b = _directional_keys(secret, initiator=False)
    return (SecureChannel(peer=b, send_key=send_a, recv_key=recv_a),
            SecureChannel(peer=a, send_key=send_b, recv_key=recv_b))


@pytest.fixture
def enclave_with_relays():
    rng = random.Random(31)
    host = EnclaveHost(rng)
    enclave = host.create_enclave(CyclosaEnclave)
    ends = {}
    for name in ("r1", "r2", "r3", "r4"):
        local, remote = paired(name.encode().ljust(32, b"-"), "me", name)
        enclave.install_peer_channel(name, local)
        ends[name] = remote
    enclave.seed_table([f"a fake query number {i}" for i in range(20)])
    return enclave, ends


class TestCyclosaUniformity:
    def test_real_and_fakes_same_size(self, enclave_with_relays):
        enclave, ends = enclave_with_relays
        batch = enclave.build_protected_batch(
            "hiv", 3, ["r1", "r2", "r3", "r4"])  # very short real query
        sizes = {len(sealed) for _, sealed in batch}
        assert len(sizes) == 1

    def test_short_and_long_queries_same_size(self, enclave_with_relays):
        enclave, ends = enclave_with_relays
        short = enclave.build_protected_batch("flu", 0, ["r1"])
        long = enclave.build_protected_batch(
            "a much longer and more descriptive medical question about "
            "treatment options", 0, ["r2"])
        assert len(short[0][1]) == len(long[0][1])

    def test_padding_is_transparent_to_relay(self, enclave_with_relays):
        enclave, ends = enclave_with_relays
        batch = enclave.build_protected_batch("real query text", 0, ["r1"])
        record = ends["r1"].open(batch[0][1])
        assert record["query"] == "real query text"

    def test_envelope_size_bound(self, enclave_with_relays):
        enclave, ends = enclave_with_relays
        batch = enclave.build_protected_batch("q", 0, ["r1"])
        # nonce/tag/seq overhead + one envelope.
        assert len(batch[0][1]) <= 2 * RECORD_ENVELOPE_BYTES + 64


class TestXSearchLeakage:
    def test_or_group_is_visibly_larger(self):
        """The contrast the paper draws: an OR-group's wire size grows
        with k, so the proxy's outgoing 'obfuscated' requests are
        distinguishable from plain ones."""
        from repro.baselines.base import or_aggregate

        rng = random.Random(1)
        fakes = [f"plausible fake query {i} terms" for i in range(7)]
        plain = "flu symptoms"
        group, _ = or_aggregate(plain, fakes, rng)
        assert len(group.encode()) > 5 * len(plain.encode())
