"""End-to-end behaviour of the full stack and its analytic twin."""

import pytest

from repro.baselines.cyclosa_analytic import CyclosaAnalytic
from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.core.sensitivity import SemanticAssessor
from repro.text.wordnet import SyntheticWordNet


class TestFullStackBehaviour:
    @pytest.fixture(scope="class")
    def deployment(self):
        return CyclosaNetwork.create(num_nodes=12, seed=3,
                                     warmup_seconds=40)

    def test_many_queries_from_many_users(self, deployment):
        queries = ["flu symptoms", "football tickets", "laptop reviews",
                   "cancer treatment", "mortgage rates", "hotel paris"]
        results = []
        for index, query in enumerate(queries):
            results.append(deployment.node(index % 6).search(
                query, k_override=2))
        assert all(r.ok for r in results)

    def test_accuracy_is_perfect(self, deployment):
        """The headline accuracy claim: protected results identical to
        direct engine results."""
        query = "symptoms cancer diagnosis"
        result = deployment.node(0).search(query, k_override=3)
        direct = [hit.url for hit in deployment.engine_node.engine.search(query)]
        assert result.documents == direct

    def test_load_spreads_across_relays(self, deployment):
        for index in range(10):
            deployment.node(index % 6).search(f"load probe {index}",
                                              k_override=3)
        relayed = [n.stats.relayed for n in deployment.nodes]
        # More than half the nodes relayed something (Fig 8d's spreading).
        assert sum(1 for count in relayed if count > 0) > 6

    def test_engine_observes_more_fakes_than_reals(self, deployment):
        before = len(deployment.engine_log)
        for index in range(5):
            deployment.node(index).search(f"fanout probe {index}",
                                          k_override=3)
        entries = deployment.engine_log[before:]
        fakes = sum(1 for e in entries if e.is_fake)
        reals = sum(1 for e in entries if not e.is_fake)
        assert reals == 5
        assert fakes >= 2 * reals


class TestAnalyticEquivalence:
    """The analytic pipeline must match the full stack's observable
    behaviour: same k policy, same fake source semantics, same
    per-relay dispersal."""

    def test_same_adaptive_k_decision(self):
        wordnet = SyntheticWordNet.build(seed=5)
        semantic = SemanticAssessor.from_resources(wordnet=wordnet,
                                                   mode="wordnet")
        config = CyclosaConfig(kmax=5)
        deployment = CyclosaNetwork.create(
            num_nodes=8, seed=5, config=config, semantic=semantic,
            warmup_seconds=40)
        analytic = CyclosaAnalytic(semantic, kmax=5, adaptive=True, seed=5)

        history = ["marathon training", "marathon shoes",
                   "marathon training plan"]
        deployment.node(0).preload_history(history)
        analytic.preload_history("user000", history)

        for query in ("cancer treatment options",       # semantic → kmax
                      "marathon training plan",          # linkable
                      "completely novel gadget idea"):   # fresh → low k
            full_result = deployment.node(0).search(query)
            analytic_obs = analytic.protect("user000", query)
            # k chosen by the full stack == fakes emitted analytically.
            assert full_result.k == len(analytic_obs) - 1, query

    def test_dispersal_one_query_per_relay(self):
        wordnet = SyntheticWordNet.build(seed=5)
        semantic = SemanticAssessor.from_resources(wordnet=wordnet,
                                                   mode="wordnet")
        analytic = CyclosaAnalytic(semantic, kmax=7, adaptive=False, seed=5)
        observations = analytic.protect("u", "dispersal probe")
        assert len({o.identity for o in observations}) == len(observations)


class TestChurnAndScale:
    def test_new_node_can_join_and_search(self):
        deployment = CyclosaNetwork.create(num_nodes=8, seed=11,
                                           warmup_seconds=40)
        from repro.core.node import CyclosaNode

        late = CyclosaNode(
            deployment.network, "latecomer", deployment.rng,
            deployment.config, deployment.services,
            semantic=deployment.nodes[0].sensitivity.semantic,
            user_id="late-user")
        deployment.network.set_link_latency(
            late.address, deployment.engine_node.address,
            __import__("repro.net.latency", fromlist=["LogNormalLatency"])
            .LogNormalLatency(median=0.03, sigma=0.3))
        late.bootstrap()
        deployment.run(30.0)

        holder = {}
        late.search("latecomer query", on_result=holder.update,
                    k_override=2)
        deadline = deployment.simulator.now + 120
        while "status" not in holder and deployment.simulator.now < deadline:
            if not deployment.simulator.step():
                break
        assert holder.get("status") == "ok"

    def test_sixty_node_deployment(self):
        deployment = CyclosaNetwork.create(num_nodes=60, seed=2,
                                           warmup_seconds=30)
        result = deployment.node(30).search("scale probe", k_override=5)
        assert result.ok
        # Relays drawn from the whole overlay, not just neighbours.
        assert len({e.identity for e in deployment.engine_log}) >= 5
