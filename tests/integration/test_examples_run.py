"""Every shipped example must run end-to-end and print its story.

Examples rot silently unless executed; these tests run each one in
process (via runpy) and assert on its key output lines.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), path
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "the user's view" in out
        assert "the search engine's view" in out
        assert "web.example" in out

    def test_private_health_search(self, capsys):
        out = run_example("private_health_search.py", capsys)
        assert "linkability" in out
        assert "arthritis" in out

    def test_rate_limit_survival(self, capsys):
        out = run_example("rate_limit_survival.py", capsys)
        assert "captcha-blocked" in out
        assert "CYCLOSA total rejections:  0" in out

    def test_restart_persistence(self, capsys):
        out = run_example("restart_persistence.py", capsys)
        assert "restored" in out
        assert "rejected (sealed for a different enclave measurement)" in out
        assert "rejected (sealed on a different platform)" in out

    def test_custom_sensitive_topics(self, capsys):
        out = run_example("custom_sensitive_topics.py", capsys)
        assert "imported legal-finance" in out
        # Same query: unprotected by default, kmax with the dictionary.
        assert out.count("bankruptcy lawyer free consultation") == 2

    def test_adversary_study(self, capsys):
        out = run_example("adversary_study.py", capsys)
        assert "re-identification rate" in out
        assert "CYCLOSA" in out
