"""Stateful (model-based) property tests with hypothesis.

Two core data structures get rule-based machines: the bounded
de-duplicating :class:`PastQueryTable` and the age-aware
:class:`PartialView`. The machines compare the implementation against a
simple reference model after arbitrary interleavings of operations.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.fake_queries import PastQueryTable
from repro.gossip.view import NodeDescriptor, PartialView

QUERIES = st.text(alphabet="abcdef", min_size=1, max_size=6)
ADDRESSES = st.sampled_from([f"n{i}" for i in range(12)])


class PastQueryTableMachine(RuleBasedStateMachine):
    """The table vs an ordered-set reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 5
        self.table = PastQueryTable(capacity=self.capacity)
        self.model: list = []  # ordered, unique, bounded

    @rule(query=QUERIES)
    def add(self, query) -> None:
        self.table.add(query)
        cleaned = query.strip()
        if not cleaned:
            return
        if cleaned in self.model:
            self.model.remove(cleaned)
        elif len(self.model) >= self.capacity:
            self.model.pop(0)
        self.model.append(cleaned)

    @rule(count=st.integers(min_value=0, max_value=8),
          seed=st.integers(min_value=0, max_value=100))
    def sample(self, count, seed) -> None:
        sample = self.table.sample(count, random.Random(seed))
        assert len(sample) == min(count, len(self.model))
        assert len(set(sample)) == len(sample)
        assert set(sample) <= set(self.model)

    @invariant()
    def matches_model(self) -> None:
        assert self.table.entries() == self.model
        assert len(self.table) <= self.capacity


class PartialViewMachine(RuleBasedStateMachine):
    """View invariants under arbitrary insert/age/merge interleavings."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 4
        self.view = PartialView(self.capacity)
        self.rng = random.Random(99)

    @rule(address=ADDRESSES, age=st.integers(min_value=0, max_value=20))
    def insert(self, address, age) -> None:
        before = {d.address: d.age for d in self.view.descriptors()}
        self.view.insert(NodeDescriptor(address, age))
        after = {d.address: d.age for d in self.view.descriptors()}
        if address in before:
            assert after[address] == min(before[address], age)

    @rule()
    def age_everything(self) -> None:
        before = {d.address: d.age for d in self.view.descriptors()}
        self.view.increase_ages()
        after = {d.address: d.age for d in self.view.descriptors()}
        assert after == {a: age + 1 for a, age in before.items()}

    @rule(addresses=st.lists(ADDRESSES, max_size=4, unique=True),
          heal=st.integers(min_value=0, max_value=3),
          swap=st.integers(min_value=0, max_value=3))
    def merge(self, addresses, heal, swap) -> None:
        received = [NodeDescriptor(a, 0) for a in addresses]
        self.view.merge(received, sent=[], heal=heal, swap=swap,
                        rng=self.rng)

    @rule(address=ADDRESSES)
    def remove(self, address) -> None:
        self.view.remove(address)
        assert address not in self.view

    @invariant()
    def bounded_and_unique(self) -> None:
        addresses = self.view.addresses()
        assert len(addresses) <= self.capacity
        assert len(addresses) == len(set(addresses))
        for descriptor in self.view.descriptors():
            assert descriptor.age >= 0


TestPastQueryTableMachine = PastQueryTableMachine.TestCase
TestPastQueryTableMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)

TestPartialViewMachine = PartialViewMachine.TestCase
TestPartialViewMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
