"""Shared fixtures.

Everything seeded; every fixture that is expensive to build is session-
scoped and treated as read-only by the tests that use it.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.aol import generate_aol_log
from repro.datasets.split import train_test_split
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def rng():
    """A deterministic RNG, fresh per test."""
    return random.Random(1234)


@pytest.fixture
def simulator():
    return Simulator()


@pytest.fixture
def network(simulator, rng):
    """A simulated network with constant 10 ms links."""
    return Network(simulator, rng, default_latency=ConstantLatency(0.01))


@pytest.fixture(scope="session")
def small_log():
    """A small synthetic AOL log (session-scoped, do not mutate)."""
    return generate_aol_log(num_users=30, mean_queries_per_user=40, seed=11)


@pytest.fixture(scope="session")
def small_split(small_log):
    return train_test_split(small_log)
