"""Cross-primitive pipelines: the compositions the protocols rely on."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aead import AeadKey, open_ as aead_open, seal as aead_seal
from repro.crypto.dh import DhKeyPair, DhParams, derive_shared_key
from repro.crypto.rsa import RsaKeyPair


class TestDhToAead:
    """The TLS handshake composition: DH secret → HKDF → AEAD."""

    def test_agreed_keys_carry_traffic(self):
        rng = random.Random(1)
        params = DhParams.small_test_group()
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        key_a = AeadKey(derive_shared_key(alice, bob.public))
        key_b = AeadKey(derive_shared_key(bob, alice.public))
        sealed = aead_seal(key_a, b"session traffic", rng=rng)
        assert aead_open(key_b, sealed) == b"session traffic"

    def test_eavesdropper_without_private_fails(self):
        rng = random.Random(2)
        params = DhParams.small_test_group()
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        eve = DhKeyPair.generate(params, rng=rng)
        key_ab = AeadKey(derive_shared_key(alice, bob.public))
        key_eb = AeadKey(derive_shared_key(eve, bob.public))
        sealed = aead_seal(key_ab, b"secret", rng=rng)
        from repro.crypto.aead import AeadError

        with pytest.raises(AeadError):
            aead_open(key_eb, sealed)


class TestOnionLayering:
    """The TOR baseline's composition: nested RSA-hybrid layers."""

    @pytest.fixture(scope="class")
    def relays(self):
        rng = random.Random(3)
        return [RsaKeyPair.generate(bits=512, rng=rng) for _ in range(3)]

    def test_three_layer_onion_peels_in_order(self, relays):
        rng = random.Random(4)
        payload = b"the innermost query"
        onion = payload
        for keypair in reversed(relays):
            onion = keypair.public.encrypt(onion, rng=rng)
        for keypair in relays:
            onion = keypair.decrypt(onion)
        assert onion == payload

    def test_wrong_order_fails(self, relays):
        rng = random.Random(5)
        onion = relays[1].public.encrypt(
            relays[0].public.encrypt(b"payload", rng=rng), rng=rng)
        from repro.crypto.rsa import RsaError

        # Peeling with the inner key first must fail.
        with pytest.raises(RsaError):
            relays[0].decrypt(onion)

    def test_middle_relay_cannot_skip_ahead(self, relays):
        rng = random.Random(6)
        onion = b"core"
        for keypair in reversed(relays):
            onion = keypair.public.encrypt(onion, rng=rng)
        once_peeled = relays[0].decrypt(onion)
        from repro.crypto.rsa import RsaError

        with pytest.raises(RsaError):
            relays[2].decrypt(once_peeled)  # layer 1 still wraps it

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=600))
    def test_property_layering_roundtrip(self, payload):
        rng = random.Random(7)
        keypairs = [RsaKeyPair.generate(bits=512, rng=random.Random(i))
                    for i in range(2)]
        onion = payload
        for keypair in reversed(keypairs):
            onion = keypair.public.encrypt(onion, rng=rng)
        for keypair in keypairs:
            onion = keypair.decrypt(onion)
        assert onion == payload
