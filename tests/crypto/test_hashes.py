"""Tests for repro.crypto.hashes."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashes import (
    DIGEST_SIZE,
    constant_time_equal,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    hmac_sha256,
    sha256,
)


class TestSha256:
    def test_empty_matches_known_vector(self):
        assert sha256().hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")

    def test_abc_matches_known_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")

    def test_chunking_is_equivalent_to_concatenation(self):
        assert sha256(b"ab", b"c") == sha256(b"abc")

    def test_digest_size(self):
        assert len(sha256(b"x")) == DIGEST_SIZE


class TestHmac:
    def test_rfc4231_case_2(self):
        # RFC 4231 test case 2: key "Jefe", data "what do ya want..."
        mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert mac.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")

    def test_different_keys_differ(self):
        assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")

    def test_chunked_equals_whole(self):
        assert hmac_sha256(b"k", b"a", b"b") == hmac_sha256(b"k", b"ab")


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"same", b"same")

    def test_unequal(self):
        assert not constant_time_equal(b"same", b"diff")

    def test_length_mismatch(self):
        assert not constant_time_equal(b"a", b"ab")


class TestHkdf:
    def test_deterministic(self):
        assert hkdf(b"secret", b"label") == hkdf(b"secret", b"label")

    def test_label_separation(self):
        assert hkdf(b"secret", b"label-a") != hkdf(b"secret", b"label-b")

    def test_salt_changes_output(self):
        assert hkdf(b"s", b"l", salt=b"x") != hkdf(b"s", b"l", salt=b"y")

    def test_requested_length(self):
        for length in (1, 16, 32, 64, 100):
            assert len(hkdf(b"s", b"l", length)) == length

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"p" * 32, b"info", 0)

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"p" * 32, b"info", 255 * 32 + 1)

    def test_extract_empty_salt_uses_zero_block(self):
        assert hkdf_extract(b"", b"ikm") == hkdf_extract(b"\x00" * 32, b"ikm")

    @given(st.binary(min_size=0, max_size=64),
           st.binary(min_size=0, max_size=32),
           st.integers(min_value=1, max_value=128))
    def test_property_output_length_and_determinism(self, ikm, info, length):
        first = hkdf(ikm, info, length)
        second = hkdf(ikm, info, length)
        assert first == second
        assert len(first) == length

    @given(st.binary(min_size=1, max_size=32))
    def test_property_prefix_consistency(self, ikm):
        # HKDF output streams: shorter requests are prefixes of longer ones.
        long = hkdf(ikm, b"info", 64)
        short = hkdf(ikm, b"info", 32)
        assert long[:32] == short
