"""Tests for repro.crypto.aead."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aead import (
    AeadError,
    AeadKey,
    KEY_SIZE,
    NONCE_SIZE,
    TAG_SIZE,
    open_,
    seal,
    sealed_overhead,
)


@pytest.fixture
def key():
    return AeadKey.generate(random.Random(7))


class TestAeadKey:
    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            AeadKey(b"short")

    def test_generate_deterministic_with_rng(self):
        assert (AeadKey.generate(random.Random(1)).key
                == AeadKey.generate(random.Random(1)).key)

    def test_generate_without_rng_uses_entropy(self):
        assert AeadKey.generate().key != AeadKey.generate().key

    def test_from_secret_label_separation(self):
        assert (AeadKey.from_secret(b"s", b"a").key
                != AeadKey.from_secret(b"s", b"b").key)

    def test_subkeys_differ(self, key):
        assert key._enc_key != key._mac_key


class TestSealOpen:
    def test_roundtrip(self, key):
        assert open_(key, seal(key, b"hello")) == b"hello"

    def test_roundtrip_empty_plaintext(self, key):
        assert open_(key, seal(key, b"")) == b""

    def test_roundtrip_with_associated_data(self, key):
        sealed = seal(key, b"payload", b"header")
        assert open_(key, sealed, b"header") == b"payload"

    def test_wrong_associated_data_rejected(self, key):
        sealed = seal(key, b"payload", b"header")
        with pytest.raises(AeadError):
            open_(key, sealed, b"other")

    def test_wrong_key_rejected(self, key):
        other = AeadKey.generate(random.Random(8))
        with pytest.raises(AeadError):
            open_(other, seal(key, b"payload"))

    def test_tampered_ciphertext_rejected(self, key):
        sealed = bytearray(seal(key, b"payload"))
        sealed[NONCE_SIZE] ^= 0x01
        with pytest.raises(AeadError):
            open_(key, bytes(sealed))

    def test_tampered_tag_rejected(self, key):
        sealed = bytearray(seal(key, b"payload"))
        sealed[-1] ^= 0x01
        with pytest.raises(AeadError):
            open_(key, bytes(sealed))

    def test_truncated_rejected(self, key):
        with pytest.raises(AeadError):
            open_(key, b"short")

    def test_nonces_are_fresh(self, key):
        rng = random.Random(3)
        first = seal(key, b"m", rng=rng)
        second = seal(key, b"m", rng=rng)
        assert first != second  # same plaintext, different wire bytes

    def test_overhead_constant(self, key):
        sealed = seal(key, b"x" * 100)
        assert len(sealed) - 100 == sealed_overhead() == NONCE_SIZE + TAG_SIZE

    @given(st.binary(max_size=2048), st.binary(max_size=64))
    def test_property_roundtrip(self, plaintext, associated):
        key = AeadKey.from_secret(b"property-test-secret")
        sealed = seal(key, plaintext, associated, rng=random.Random(0))
        assert open_(key, sealed, associated) == plaintext

    @given(st.binary(min_size=1, max_size=256),
           st.integers(min_value=0))
    def test_property_single_bitflip_detected(self, plaintext, position):
        key = AeadKey.from_secret(b"bitflip-secret")
        sealed = bytearray(seal(key, plaintext, rng=random.Random(0)))
        index = position % len(sealed)
        sealed[index] ^= 0x01
        with pytest.raises(AeadError):
            open_(key, bytes(sealed))
