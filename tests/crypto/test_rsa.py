"""Tests for repro.crypto.rsa."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rsa import RsaError, RsaKeyPair, is_probable_prime


@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair.generate(bits=512, rng=random.Random(42))


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p, rng=random.Random(0))

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 561, 7917):
            assert not is_probable_prime(n, rng=random.Random(0))

    def test_carmichael_number_rejected(self):
        # 561 = 3*11*17 fools Fermat but not Miller-Rabin.
        assert not is_probable_prime(561, rng=random.Random(0))

    def test_large_known_prime(self):
        assert is_probable_prime((1 << 127) - 1, rng=random.Random(0))


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        a = RsaKeyPair.generate(bits=256, rng=random.Random(5))
        b = RsaKeyPair.generate(bits=256, rng=random.Random(5))
        assert a.public.n == b.public.n

    def test_modulus_size(self, keypair):
        assert 511 <= keypair.public.n.bit_length() <= 512

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = RsaKeyPair.generate(bits=256, rng=random.Random(6))
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other.public.fingerprint()


class TestHybridEncryption:
    def test_roundtrip(self, keypair):
        rng = random.Random(1)
        ciphertext = keypair.public.encrypt(b"the message", rng=rng)
        assert keypair.decrypt(ciphertext) == b"the message"

    def test_roundtrip_large_payload(self, keypair):
        rng = random.Random(2)
        payload = bytes(range(256)) * 64  # 16 KiB, far beyond modulus size
        assert keypair.decrypt(keypair.public.encrypt(payload, rng=rng)) == payload

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(bits=512, rng=random.Random(7))
        ciphertext = keypair.public.encrypt(b"secret", rng=random.Random(1))
        with pytest.raises(RsaError):
            other.decrypt(ciphertext)

    def test_tampered_payload_rejected(self, keypair):
        ciphertext = bytearray(keypair.public.encrypt(b"secret",
                                                      rng=random.Random(1)))
        ciphertext[-1] ^= 0x01
        with pytest.raises(RsaError):
            keypair.decrypt(bytes(ciphertext))

    def test_truncated_rejected(self, keypair):
        ciphertext = keypair.public.encrypt(b"secret", rng=random.Random(1))
        with pytest.raises(RsaError):
            keypair.decrypt(ciphertext[:10])

    def test_randomised_encryption(self, keypair):
        rng = random.Random(3)
        assert (keypair.public.encrypt(b"m", rng=rng)
                != keypair.public.encrypt(b"m", rng=rng))


class TestSignatures:
    def test_sign_verify(self, keypair):
        signature = keypair.sign(b"message")
        assert keypair.public.verify(b"message", signature)

    def test_wrong_message_rejected(self, keypair):
        signature = keypair.sign(b"message")
        assert not keypair.public.verify(b"other", signature)

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(bits=512, rng=random.Random(8))
        signature = keypair.sign(b"message")
        assert not other.public.verify(b"message", signature)

    def test_tampered_signature_rejected(self, keypair):
        signature = bytearray(keypair.sign(b"message"))
        signature[0] ^= 0x01
        assert not keypair.public.verify(b"message", bytes(signature))

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"message", b"\x00" * 8)

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=512))
    def test_property_sign_verify_any_message(self, message):
        keypair = RsaKeyPair.generate(bits=512, rng=random.Random(99))
        assert keypair.public.verify(message, keypair.sign(message))
