"""Tests for repro.crypto.keys."""

import random

from repro.crypto.keys import IdentityKeyPair, SymmetricKey


class TestSymmetricKey:
    def test_derive_is_deterministic(self):
        key = SymmetricKey(b"k" * 32, label="root")
        assert key.derive("x").key == key.derive("x").key

    def test_derive_purpose_separation(self):
        key = SymmetricKey(b"k" * 32)
        assert key.derive("a").key != key.derive("b").key

    def test_derive_tracks_label(self):
        key = SymmetricKey(b"k" * 32, label="root")
        assert key.derive("child").label == "root/child"

    def test_as_aead_roundtrip(self):
        from repro.crypto.aead import open_, seal

        key = SymmetricKey(b"k" * 32).as_aead()
        assert open_(key, seal(key, b"data")) == b"data"


class TestIdentityKeyPair:
    def test_fingerprint_matches_public_key(self):
        identity = IdentityKeyPair.generate(bits=512, rng=random.Random(1))
        assert identity.fingerprint == identity.public.fingerprint()

    def test_distinct_identities(self):
        rng = random.Random(2)
        a = IdentityKeyPair.generate(bits=512, rng=rng)
        b = IdentityKeyPair.generate(bits=512, rng=rng)
        assert a.fingerprint != b.fingerprint

    def test_short_id_is_hex_prefix(self):
        identity = IdentityKeyPair.generate(bits=512, rng=random.Random(3))
        assert identity.short_id() == identity.fingerprint[:4].hex()
        assert len(identity.short_id()) == 8
