"""Tests for repro.crypto.dh."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import DhKeyPair, DhParams, derive_shared_key


@pytest.fixture
def params():
    return DhParams.small_test_group()


class TestParams:
    def test_group14_modulus_size(self):
        params = DhParams.rfc3526_group14()
        assert params.p.bit_length() == 2048
        assert params.g == 2

    def test_small_group_is_mersenne_prime(self, params):
        assert params.p == (1 << 127) - 1

    def test_public_from_private(self, params):
        assert params.public_from_private(5) == pow(params.g, 5, params.p)


class TestKeyAgreement:
    def test_shared_secret_agrees(self, params):
        rng = random.Random(1)
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_derived_keys_agree(self, params):
        rng = random.Random(2)
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        assert (derive_shared_key(alice, bob.public)
                == derive_shared_key(bob, alice.public))

    def test_derived_key_label_separation(self, params):
        rng = random.Random(3)
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        assert (derive_shared_key(alice, bob.public, b"a")
                != derive_shared_key(alice, bob.public, b"b"))

    def test_third_party_disagrees(self, params):
        rng = random.Random(4)
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        eve = DhKeyPair.generate(params, rng=rng)
        assert alice.shared_secret(bob.public) != eve.shared_secret(bob.public)

    def test_out_of_range_peer_rejected(self, params):
        rng = random.Random(5)
        alice = DhKeyPair.generate(params, rng=rng)
        with pytest.raises(ValueError):
            alice.shared_secret(0)
        with pytest.raises(ValueError):
            alice.shared_secret(params.p)

    def test_deterministic_generation(self, params):
        a = DhKeyPair.generate(params, rng=random.Random(9))
        b = DhKeyPair.generate(params, rng=random.Random(9))
        assert a.private == b.private and a.public == b.public

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32))
    def test_property_agreement_any_seed(self, seed):
        params = DhParams.small_test_group()
        rng = random.Random(seed)
        alice = DhKeyPair.generate(params, rng=rng)
        bob = DhKeyPair.generate(params, rng=rng)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
