"""Tests for the calibration sweep."""

import pytest

from repro.experiments.calibration import (
    K0_ANCHOR,
    TOR_ANCHOR,
    best_point,
    measure_point,
    run,
)


class TestCalibration:
    @pytest.fixture(scope="class")
    def grid(self):
        return run(zipf_values=(1.05, 1.35),
                   exploration_values=(0.1, 0.35),
                   num_users=25, mean_queries=40.0, max_queries=400,
                   seed=3)

    def test_grid_size(self, grid):
        assert len(grid) == 4

    def test_zipf_raises_tor_rate(self, grid):
        by_knobs = {(r["zipf"], r["exploration"]): r for r in grid}
        assert (by_knobs[(1.35, 0.1)]["tor_rate"]
                > by_knobs[(1.05, 0.1)]["tor_rate"])

    def test_exploration_raises_unlinkable_mass(self, grid):
        by_knobs = {(r["zipf"], r["exploration"]): r for r in grid}
        assert (by_knobs[(1.05, 0.35)]["unlinkable_mass"]
                > by_knobs[(1.05, 0.1)]["unlinkable_mass"])

    def test_best_point_minimises_distance(self, grid):
        chosen = best_point(grid)
        assert chosen["anchor_distance"] == min(r["anchor_distance"]
                                                for r in grid)

    def test_sensitive_rate_stable_across_knobs(self, grid):
        # The sensitivity calibration is independent of the two
        # behavioural knobs.
        rates = [r["sensitive_rate"] for r in grid]
        assert max(rates) - min(rates) < 0.08

    def test_shipped_defaults_near_anchor(self):
        point = measure_point(1.2, 0.22, num_users=40, mean_queries=50.0,
                              max_queries=800, seed=0)
        assert abs(point["tor_rate"] - TOR_ANCHOR) < 0.10
        assert abs(point["unlinkable_mass"] - K0_ANCHOR) < 0.20
