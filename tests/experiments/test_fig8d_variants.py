"""Fig 8d variants: distributed X-Search proxies still trip the limit."""

import pytest

from repro.experiments.fig8d_ratelimit import run


class TestDistributedProxies:
    def test_few_proxies_still_blocked(self):
        outcome = run(duration_minutes=40, num_xsearch_proxies=5, seed=2)
        # 12 492 q/h over 5 proxies ≈ 2 500 q/h each > the 1 000/h limit.
        assert outcome["xsearch_rejected_total"] > 0

    def test_enough_proxies_survive_but_cost_infrastructure(self):
        outcome = run(duration_minutes=40, num_xsearch_proxies=20, seed=2)
        # ≈ 625 q/h per proxy: under the limit — but that is 20
        # provisioned servers to serve 100 users (the §II-A4 cost
        # argument), where CYCLOSA reuses the 100 clients themselves.
        assert outcome["xsearch_rejected_total"] == 0

    def test_crossover_is_where_arithmetic_says(self):
        # Offered ≈ 12 492 q/h; the limit is 1 000/h/identity, so the
        # survival threshold is ~13 proxies. The run must span at least
        # one full rate-limit window (an hour) for the maths to bind.
        blocked = run(duration_minutes=90, num_xsearch_proxies=9, seed=2)
        surviving = run(duration_minutes=90, num_xsearch_proxies=16, seed=2)
        assert blocked["xsearch_rejected_total"] > 0
        assert surviving["xsearch_rejected_total"] == 0

    def test_cyclosa_unaffected_by_proxy_parameter(self):
        a = run(duration_minutes=30, num_xsearch_proxies=1, seed=3)
        b = run(duration_minutes=30, num_xsearch_proxies=10, seed=3)
        assert a["cyclosa_rejected_total"] == b["cyclosa_rejected_total"] == 0
