"""Tests for the extension experiments (robustness, sensitivity sweep)."""

import pytest

from repro.experiments.robustness import run as run_robustness
from repro.experiments.sensitivity_sweep import run as run_sweep


class TestRobustness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_robustness(num_nodes=16, queries_per_setting=15,
                              byzantine_fractions=(0.0, 0.4), k=2, seed=1)

    def test_clean_overlay_is_perfect(self, rows):
        clean = rows[0]
        assert clean["success_rate"] == 1.0
        assert clean["retries"] == 0

    def test_byzantine_overlay_recovers(self, rows):
        hostile = rows[1]
        # Blacklisting + retries keep success high despite 40 % of the
        # overlay silently dropping forwards.
        assert hostile["success_rate"] >= 0.85
        assert hostile["blacklisted"] > 0

    def test_recovery_costs_latency(self, rows):
        clean, hostile = rows
        assert hostile["median_latency"] >= clean["median_latency"]


class TestSensitivitySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_sweep(sensitivity_rates=(0.05, 0.5),
                         num_users=30, mean_queries=40.0, kmax=5,
                         seed=1, max_queries=400)

    def test_workload_rates_realised(self, rows):
        assert rows[0]["sensitive_rate"] < rows[1]["sensitive_rate"]

    def test_adaptive_cost_tracks_sensitivity(self, rows):
        # More sensitive workload -> more fakes under the adaptive rule.
        assert rows[1]["adaptive_mean_k"] > rows[0]["adaptive_mean_k"]

    def test_static_cost_is_flat(self, rows):
        assert rows[0]["static_mean_k"] == rows[1]["static_mean_k"] == 5.0

    def test_adaptive_cheaper_than_static(self, rows):
        for row in rows:
            assert row["adaptive_mean_k"] < row["static_mean_k"]

    def test_privacy_within_factor_of_static(self, rows):
        for row in rows:
            assert row["adaptive_reid"] < 3 * row["static_reid"] + 0.02
