"""The ``repro monitor`` flight-recorder scenario and its SLO verdict.

Marked ``slo``: these drive full (small) churn+chaos soaks, so they are
the slowest tests in the experiments group. The full-scale determinism
and storm-pinning gate lives in ``benchmarks/check_slo.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, obs
from repro.experiments import monitor

pytestmark = [pytest.mark.obs, pytest.mark.slo]

#: One small soak shared by the read-only assertions below (a session-
#: scoped run would leak OBS state past the autouse reset, so module
#: scope + explicit params).
SMALL = dict(num_nodes=8, clients=3, duration=120.0, seed=11, plan_seed=3,
             storm_start=80.0, storm_end=110.0, churn_victims=1,
             churn_start=60.0, churn_duration=20.0, drain_seconds=90.0)


@pytest.fixture(scope="module")
def small_report():
    return monitor.run_scenario(**SMALL)


def test_every_search_terminates(small_report):
    traffic = small_report["traffic"]
    assert traffic["hung_searches"] == 0
    assert traffic["completed"] == traffic["issued"]
    assert set(traffic["statuses"]) <= {
        "ok", "captcha", "relay-failure", "channel-failure", "no-peers"}


def test_windows_cover_the_run(small_report):
    windows = small_report["windows"]
    width = small_report["scenario"]["window_seconds"]
    # Recorder starts after warm-up; boundaries are absolute, so the
    # first window is the one containing t=warmup.
    first = int(small_report["scenario"]["warmup"] // width)
    assert [w["index"] for w in windows] == \
        list(range(first, first + len(windows)))
    for window in windows:
        assert window["end"] - window["start"] == pytest.approx(width)
    assert small_report["windows_evicted"] == 0


def test_storm_breaches_success_rate_in_its_windows(small_report):
    lo, hi = small_report["scenario"]["storm"]["windows"]
    rule = next(r for r in small_report["slo"]["rules"]
                if r["rule"] == "search-success")
    assert rule["verdict"] == "breached"
    assert rule["alert_ranges"], "storm produced no burn-rate alert"
    policy_tail = 3  # short_windows at the default 10 s width
    for alert_lo, alert_hi in rule["alert_ranges"]:
        assert alert_lo >= lo, "alert before the storm began"
        assert alert_hi <= hi + policy_tail, "alert long after the storm"
    assert any(a_lo <= hi and a_hi >= lo
               for a_lo, a_hi in rule["alert_ranges"])


def test_quiet_rules_stay_ok(small_report):
    by_name = {r["rule"]: r for r in small_report["slo"]["rules"]}
    assert by_name["backlog-bounded"]["verdict"] == "ok"
    assert small_report["slo"]["verdict"] == "breached"  # storm rule


def test_report_is_byte_identical_across_runs(small_report):
    again = monitor.run_scenario(**SMALL)
    assert monitor.report_json(again) == monitor.report_json(small_report)


def test_dashboard_renders(small_report):
    text = monitor.format_dashboard(small_report)
    assert "win" in text and "alerts" in text
    assert "injected storm" in text
    assert "SLO spec 'soak-default': BREACHED" in text
    assert "burn-rate alerts: windows" in text


def test_scenario_validates_parameters():
    with pytest.raises(ValueError):
        monitor.run_scenario(num_nodes=4, clients=5)
    with pytest.raises(ValueError):
        monitor.run_scenario(num_nodes=4, clients=3, churn_victims=2)


def test_default_spec_scales_policy_with_window_width():
    wide = monitor.default_slo_spec(window_seconds=30.0)
    narrow = monitor.default_slo_spec(window_seconds=5.0)
    assert narrow.policy.short_windows > wide.policy.short_windows
    assert {rule.name for rule in wide.rules} == {
        "search-success", "search-latency", "backlog-bounded"}


# -- CLI ---------------------------------------------------------------

CLI_ARGS = ["monitor", "--nodes", "8", "--clients", "3",
            "--duration", "120", "--seed", "11", "--plan-seed", "3"]


def test_cli_monitor_json(capsys):
    rc = cli.main(CLI_ARGS + ["--json"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["traffic"]["hung_searches"] == 0
    assert report["slo"]["rules"]


def test_cli_monitor_dashboard(capsys):
    rc = cli.main(CLI_ARGS)
    assert rc == 0
    out = capsys.readouterr().out
    assert "SLO spec" in out


def test_cli_monitor_openmetrics(capsys):
    rc = cli.main(CLI_ARGS + ["--format", "openmetrics"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.endswith("# EOF\n")
    assert "# TYPE cyclosa_core_search_results counter" in out
