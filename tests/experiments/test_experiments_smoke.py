"""Smoke tests: every experiment driver runs at reduced scale and
produces results with the paper's qualitative shape."""

import pytest

from repro.experiments import (
    ablations,
    fig5_reidentification,
    fig6_accuracy,
    fig7_adaptive_k,
    fig8c_throughput,
    fig8d_ratelimit,
    table1_properties,
    table2_categorizer,
)

SMALL = dict(num_users=40, mean_queries=50.0, seed=1)


class TestTable1:
    def test_property_matrix_matches_paper(self):
        outcome = table1_properties.run(num_users=30, mean_queries=40.0,
                                        seed=1, sample_size=60)
        for name, maps in outcome.items():
            assert maps["measured"] == maps["declared"], name

    def test_cyclosa_full_row(self):
        outcome = table1_properties.run(num_users=30, mean_queries=40.0,
                                        seed=1, sample_size=60)
        assert all(outcome["CYCLOSA"]["measured"].values())


class TestTable2:
    def test_shape(self):
        results = table2_categorizer.run(num_users=60, mean_queries=60.0,
                                         seed=0, max_queries=2500)
        wn_p, wn_r = results["WordNet"]
        lda_p, lda_r = results["LDA"]
        comb_p, comb_r = results["WordNet + LDA"]
        # The paper's ordering: WordNet has the worst precision; the
        # combination has the best; recall is decent everywhere.
        assert wn_p < lda_p
        assert comb_p >= lda_p - 0.05
        assert wn_r > 0.6 and lda_r > 0.75 and comb_r > 0.7


class TestFig5:
    @pytest.fixture(scope="class")
    def rates(self):
        return fig5_reidentification.run(**SMALL, k=7, max_queries=800)

    def test_ordering_matches_paper(self, rates):
        # GooPIR ≥ TMN > TOR >> PEAS > X-Search > CYCLOSA
        assert rates["GooPIR"] > rates["TOR"]
        assert rates["TrackMeNot"] > rates["TOR"]
        assert rates["TOR"] > rates["PEAS"]
        assert rates["PEAS"] > rates["CYCLOSA"]
        assert rates["X-Search"] > rates["CYCLOSA"]

    def test_magnitudes(self, rates):
        assert 0.25 < rates["TOR"] < 0.50
        assert rates["CYCLOSA"] < 0.08


class TestFig6:
    def test_accuracy_split(self):
        results = fig6_accuracy.run(**SMALL, k=3, max_queries=150)
        for name in ("TOR", "TrackMeNot", "CYCLOSA"):
            assert results[name].perfect, name
        for name in ("GooPIR", "PEAS", "X-Search"):
            assert results[name].completeness < 0.95, name
            assert not results[name].perfect


class TestFig7:
    def test_adaptive_distribution(self):
        outcome = fig7_adaptive_k.run(num_users=40, mean_queries=60.0,
                                      kmax=7, seed=0, max_queries=1200)
        assert 0.05 < outcome["fraction_k0"] < 0.45
        assert outcome["fraction_kmax"] > 0.1  # the k=7 spike
        assert 0 < outcome["mean_k"] < 7


class TestFig8c:
    def test_saturation_shape(self):
        results = fig8c_throughput.run(rates=(5000, 20000, 40000),
                                       duration=1.0)
        cyclosa = results["CYCLOSA"]
        xsearch = results["X-Search"]
        assert cyclosa[0]["capacity"] > 40000
        assert xsearch[0]["capacity"] < cyclosa[0]["capacity"]
        # X-Search past its knee is far slower than at low rate.
        assert xsearch[-1]["median"] > 3 * xsearch[0]["median"]
        # CYCLOSA still fine at 40 k.
        assert cyclosa[-1]["median"] < 2 * cyclosa[0]["median"]


class TestFig8d:
    def test_rate_limit_split(self):
        outcome = fig8d_ratelimit.run(duration_minutes=40, seed=1)
        assert outcome["xsearch_rejected_total"] > 0
        assert outcome["cyclosa_rejected_total"] == 0
        for point in outcome["series"]:
            assert (point["cyclosa_max_per_node_h"]
                    < outcome["limit_per_hour"])


class TestAblations:
    def test_adaptive_ablation(self):
        rows = ablations.run_adaptive_ablation(
            num_users=30, mean_queries=40.0, kmax=5, seed=0,
            max_queries=400)
        by_label = {row["configuration"]: row for row in rows}
        static0 = by_label["static k=0"]
        static5 = by_label["static k=5 (X-Search policy)"]
        adaptive = by_label["adaptive kmax=5 (CYCLOSA)"]
        assert static0["reidentification"] > adaptive["reidentification"]
        assert adaptive["fakes_per_query"] < static5["fakes_per_query"]

    def test_path_ablation(self):
        rows = ablations.run_path_ablation(
            num_users=30, mean_queries=40.0, k=3, seed=0, max_queries=100)
        separate = rows[0]
        grouped = rows[1]
        assert separate["correctness"] == 1.0
        assert separate["completeness"] == 1.0
        assert grouped["completeness"] < 1.0

    def test_epc_ablation_cliff(self):
        rows = ablations.run_epc_ablation(working_sets_mb=[2, 256])
        small, big = rows
        assert small["paging_ratio"] == 0.0
        assert big["paging_ratio"] > 0.0
        assert big["service_time_us"] > 5 * small["service_time_us"]
        assert small["capacity_req_s"] > 40000
