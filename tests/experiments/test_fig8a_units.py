"""Unit-scale runs of the Fig 8a per-system latency harnesses."""

import pytest

from repro.experiments.fig8a_latency import (
    run_cyclosa,
    run_direct,
    run_tor,
    run_xsearch,
)

QUERIES = ["symptoms cancer", "football scores", "hotel booking",
           "laptop reviews", "mortgage rates"]


class TestPerSystemHarnesses:
    def test_direct_latencies(self):
        latencies = run_direct(10, QUERIES, seed=1)
        assert len(latencies) == 10
        assert all(0.01 < latency < 5.0 for latency in latencies)

    def test_xsearch_latencies(self):
        latencies = run_xsearch(10, QUERIES, k=2, seed=1)
        assert len(latencies) == 10
        assert all(0.05 < latency < 10.0 for latency in latencies)

    def test_cyclosa_latencies(self):
        latencies = run_cyclosa(10, QUERIES, k=2, seed=1, num_nodes=10)
        assert len(latencies) == 10
        assert all(0.1 < latency < 30.0 for latency in latencies)

    def test_tor_latencies_heavy(self):
        latencies = run_tor(6, QUERIES, seed=1, num_relays=5)
        assert len(latencies) == 6
        # Circuit hops dominate: even the fastest sample is multi-second.
        assert min(latencies) > 2.0

    def test_deterministic_across_runs(self):
        a = run_direct(5, QUERIES, seed=4)
        b = run_direct(5, QUERIES, seed=4)
        assert a == b

    def test_ordering_holds_at_small_scale(self):
        from repro.metrics.latencystats import percentile

        direct = percentile(run_direct(12, QUERIES, seed=2), 0.5)
        xsearch = percentile(run_xsearch(12, QUERIES, k=2, seed=2), 0.5)
        cyclosa = percentile(
            run_cyclosa(12, QUERIES, k=2, seed=2, num_nodes=10), 0.5)
        assert direct < xsearch < cyclosa
