"""Tests for the ASCII plotting helpers."""

from repro.experiments.plotting import ascii_bars, ascii_cdf


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bars({"TOR": 36.0, "CYCLOSA": 4.0}, unit=" %")
        assert "TOR" in chart and "CYCLOSA" in chart

    def test_bar_lengths_proportional(self):
        chart = ascii_bars({"big": 100.0, "small": 10.0}, width=50)
        big_line, small_line = chart.splitlines()
        assert big_line.count("█") > 4 * small_line.count("█")

    def test_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_explicit_max(self):
        chart = ascii_bars({"x": 50.0}, width=10, max_value=100.0)
        assert chart.count("█") == 5


class TestAsciiCdf:
    def test_renders_axes_and_legend(self):
        chart = ascii_cdf({"fast": [0.1, 0.2, 0.3],
                           "slow": [10.0, 20.0, 30.0]})
        assert "o = fast" in chart
        assert "x = slow" in chart
        assert "100%" in chart or "99%" in chart or "94%" in chart

    def test_log_scale_separates_magnitudes(self):
        chart = ascii_cdf({"fast": [0.1] * 10, "slow": [100.0] * 10},
                          log_x=True, width=40)
        lines = [l for l in chart.splitlines() if "|" in l and "%" in l]
        # fast's marks hug the left, slow's the right.
        for line in lines:
            body = line.split("|", 1)[1]
            if "o" in body:
                assert body.index("o") < 5
            if "x" in body:
                assert body.rindex("x") > 30

    def test_empty_series_skipped(self):
        chart = ascii_cdf({"empty": [], "full": [1.0, 2.0]})
        assert "full" in chart and "empty" not in chart

    def test_all_empty(self):
        assert ascii_cdf({"a": []}) == "(no data)"

    def test_constant_samples_no_crash(self):
        chart = ascii_cdf({"flat": [5.0] * 20})
        assert "flat" in chart
