"""Tests for the CLI and the CSV exporter."""

import csv
import os

import pytest

from repro.cli import DEFAULT_SEQUENCE, EXPERIMENTS, build_parser, main
from repro.experiments.export import EXPORTERS, export_all


class TestCliParsing:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for alias in EXPERIMENTS:
            assert alias in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_default_sequence_is_known(self):
        assert set(DEFAULT_SEQUENCE) <= set(EXPERIMENTS)

    def test_parser_search_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["search", "flu"])
        assert args.query == "flu"
        assert args.nodes == 16

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_search_command_end_to_end(self, capsys):
        code = main(["search", "flu symptoms", "--nodes", "8",
                     "--seed", "3", "--kmax", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "REAL" in out
        assert "fakes (k)" in out


class TestExport:
    def test_export_selected(self, tmp_path):
        paths = export_all(str(tmp_path), only=["fig5"],
                           num_users=30, mean_queries=40.0, seed=1,
                           max_queries=200)
        assert set(paths) == {"fig5"}
        with open(paths["fig5"]) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["system", "reidentification_rate"]
        systems = {row[0] for row in rows[1:]}
        assert "CYCLOSA" in systems and "TOR" in systems
        rates = {row[0]: float(row[1]) for row in rows[1:]}
        assert rates["CYCLOSA"] < rates["TOR"]

    def test_export_fig7_cdf_monotone(self, tmp_path):
        paths = export_all(str(tmp_path), only=["fig7"],
                           num_users=30, mean_queries=40.0, seed=1,
                           max_queries=400)
        with open(paths["fig7"]) as handle:
            rows = list(csv.reader(handle))[1:]
        cdf = [float(row[1]) for row in rows]
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0

    def test_unknown_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_all(str(tmp_path), only=["fig99"])

    def test_all_exporters_registered(self):
        assert {"table2", "fig5", "fig6", "fig7", "fig8a", "fig8b",
                "fig8c", "fig8d"} == set(EXPORTERS)

    def test_files_created_in_outdir(self, tmp_path):
        paths = export_all(str(tmp_path), only=["fig6"],
                           num_users=30, mean_queries=40.0, seed=1,
                           max_queries=60)
        assert os.path.dirname(paths["fig6"]) == str(tmp_path)
        assert os.path.exists(paths["fig6"])
