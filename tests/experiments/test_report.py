"""Tests for the Markdown report generator."""

import pytest

from repro.experiments.report import _md_table, build_report


class TestMdTable:
    def test_renders_header_and_rows(self):
        table = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2 |" in lines


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(scale="small", seed=1)

    def test_contains_every_section(self, report):
        for heading in ("Table I", "Table II", "Fig 5", "Fig 6", "Fig 7",
                        "Fig 8c", "Fig 8d"):
            assert heading in report

    def test_table1_agrees_with_paper(self, report):
        assert "Disagreements with the paper's matrix: **0**" in report

    def test_all_systems_present(self, report):
        for system in ("TOR", "TrackMeNot", "GooPIR", "PEAS", "X-Search",
                       "CYCLOSA"):
            assert system in report

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_report(scale="huge")
