"""Tests for the shared experiment fixtures in experiments.common."""

import pytest

from repro.experiments.common import (
    Workload,
    build_assessors,
    build_sensitive_corpus,
    build_workload,
    print_table,
)


class TestBuildWorkload:
    def test_memoised(self):
        a = build_workload(num_users=20, mean_queries_per_user=30.0, seed=9)
        b = build_workload(num_users=20, mean_queries_per_user=30.0, seed=9)
        assert a is b  # lru_cache hit

    def test_distinct_params_distinct_workloads(self):
        a = build_workload(num_users=20, mean_queries_per_user=30.0, seed=9)
        b = build_workload(num_users=20, mean_queries_per_user=30.0, seed=10)
        assert a is not b

    def test_structure(self):
        workload = build_workload(num_users=20,
                                  mean_queries_per_user=30.0, seed=9)
        assert isinstance(workload, Workload)
        assert len(workload.train.records) > len(workload.test.records)
        assert workload.attack.profiles
        assert workload.engine.search("symptoms") is not None

    def test_user_training_texts(self):
        workload = build_workload(num_users=20,
                                  mean_queries_per_user=30.0, seed=9)
        user = workload.log.users[0]
        texts = workload.user_training_texts(user)
        assert texts
        assert all(isinstance(text, str) for text in texts)


class TestSensitiveCorpus:
    def test_documents_are_token_lists(self):
        corpus = build_sensitive_corpus(docs_per_topic=10, seed=2)
        assert len(corpus) == 40  # 4 sensitive topics
        assert all(isinstance(doc, list) and doc for doc in corpus)

    def test_mostly_sensitive_vocabulary(self):
        from repro.datasets.vocabulary import (
            SENSITIVE_TOPICS,
            build_topic_vocabularies,
        )

        vocabularies = build_topic_vocabularies()
        sensitive_terms = set()
        for topic in SENSITIVE_TOPICS:
            sensitive_terms.update(vocabularies[topic].terms)
        corpus = build_sensitive_corpus(docs_per_topic=10, seed=2)
        tokens = [token for doc in corpus for token in doc]
        hits = sum(1 for token in tokens if token in sensitive_terms)
        assert hits / len(tokens) > 0.85

    def test_noise_knob(self):
        clean = build_sensitive_corpus(docs_per_topic=20,
                                       neutral_noise=0.0, seed=2)
        noisy = build_sensitive_corpus(docs_per_topic=20,
                                       neutral_noise=0.3, seed=2)
        from repro.datasets.vocabulary import build_topic_vocabularies

        vocabularies = build_topic_vocabularies()
        neutral = set()
        for topic, vocabulary in vocabularies.items():
            if not vocabulary.sensitive:
                neutral.update(vocabulary.terms)

        def neutral_fraction(corpus):
            tokens = [t for doc in corpus for t in doc]
            return sum(1 for t in tokens if t in neutral) / len(tokens)

        assert neutral_fraction(noisy) > neutral_fraction(clean) + 0.1


class TestAssessors:
    def test_three_configurations(self):
        assessors = build_assessors(seed=0)
        assert set(assessors) == {"WordNet", "LDA", "WordNet + LDA"}
        assert assessors["WordNet"].mode == "wordnet"
        assert assessors["LDA"].mode == "lda"
        assert assessors["WordNet + LDA"].mode == "combined"


class TestPrintTable:
    def test_renders_aligned(self, capsys):
        print_table("Title", ["col", "x"], [["value", 1], ["v", 22]])
        out = capsys.readouterr().out
        assert "Title" in out
        assert "value" in out and "22" in out
