"""Smoke test for the engine scale-out experiment."""

from repro.experiments import engine_scaling


class TestEngineScalingExperiment:
    def test_rows_identical_and_load_spread(self):
        rows = engine_scaling.run(
            num_nodes=6, replica_counts=(1, 3), seed=2,
            queries=engine_scaling.DEFAULT_QUERIES[:4])
        assert [row["replicas"] for row in rows] == [1, 3]
        assert all(row["pages_identical"] for row in rows)
        single, sharded = rows
        assert single["served_per_replica"] == [sum(
            sharded["served_per_replica"])]
        assert len(sharded["served_per_replica"]) == 3
        assert single["cache_hit_rate"] is None
        assert sharded["cache_hit_rate"] is not None
        assert all(row["median_latency"] > 0 for row in rows)
