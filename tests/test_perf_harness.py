"""Tests for the perf harness (repro.perf) and its regression guard.

Everything here runs at toy scale — these are correctness tests of the
harness plumbing (parameters, JSON schema, comparison logic, CLI exit
codes), not perf measurements. The measurements live in
``benchmarks/test_bench_pipeline.py`` behind the ``perf`` marker.
"""

import copy
import json

import pytest

from benchmarks import check_regression
from repro import perf
from repro.cli import main as cli_main

#: Small enough that the whole module stays in tier-1 comfortably.
TINY = dict(history_size=120, probes=10, linear_probes=4,
            num_events=1500, chains=8, num_nodes=4, searches=2,
            engine_queries=10, engine_unique=3, engine_docs_per_topic=6,
            replica_counts=[2], monitor_windows=40,
            shard_nodes=[30, 60], shard_workers=[1, 2], shard_count=4,
            shard_duration=1.5, seed=0, repeats=1)


@pytest.fixture(scope="module")
def tiny_results():
    return perf.run_all(**TINY)


class TestRunAll:
    def test_sections_and_meta(self, tiny_results):
        assert set(tiny_results) >= {"meta", "sensitivity", "simulator",
                                     "search", "engine_scaling",
                                     "shard_scaling", "monitor",
                                     "text_caches"}
        meta = tiny_results["meta"]
        assert meta["schema"] == 1
        assert meta["params"]["history_size"] == 120

    def test_every_throughput_key_present_and_positive(self, tiny_results):
        for section, key in perf.THROUGHPUT_KEYS:
            assert tiny_results[section][key] > 0.0

    def test_scores_bit_identical_at_tiny_scale(self, tiny_results):
        assert tiny_results["sensitivity"]["scores_bit_identical"] is True

    def test_search_section_shape(self, tiny_results):
        search = tiny_results["search"]
        assert search["ok"] == search["searches"] == 2
        assert "sensitivity" in search["stage_breakdown_simulated_seconds"]
        assert search["simulated_end_to_end_seconds"] is not None

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            perf.run_all(histroy_size=10)

    def test_none_overrides_fall_back_to_defaults(self):
        params = dict(TINY)
        params["seed"] = None
        results_meta_params = {}
        # Only exercise the parameter plumbing, not a full run: patch
        # via run_all's own validation by passing everything tiny.
        out = perf.run_all(**params)
        results_meta_params = out["meta"]["params"]
        assert results_meta_params["seed"] == perf.DEFAULT_PARAMS["seed"]

    def test_workload_queries_deterministic(self):
        assert perf.workload_queries(30, seed=5) == \
            perf.workload_queries(30, seed=5)
        assert len(perf.workload_queries(30, seed=5)) == 30

    def test_shard_scaling_section_shape(self, tiny_results):
        sharding = tiny_results["shard_scaling"]
        assert sharding["shards"] == 4
        assert sharding["cpu_count"] >= 1
        assert [row["num_nodes"] for row in sharding["node_curve"]] \
            == [30, 60]
        assert [row["workers"] for row in sharding["worker_curve"]] \
            == [1, 2]
        # The worker curve reuses the largest node point at workers=1.
        assert sharding["worker_curve"][0]["num_nodes"] == 60
        assert sharding["worker_curve"][0]["speedup"] == 1.0
        assert sharding["events_per_sec_workers1"] > 0
        assert sharding["best_events_per_sec"] > 0
        assert sharding["best_workers"] in (1, 2)

    def test_shard_scaling_worker_counts_capped_at_shards(self):
        section = perf.bench_shard_scaling(
            shard_nodes=[20], shard_workers=[1, 2, 16], shard_count=2,
            shard_duration=1.0)
        assert [row["workers"] for row in section["worker_curve"]] \
            == [1, 2]

    def test_engine_scaling_section_shape(self, tiny_results):
        scaling = tiny_results["engine_scaling"]
        assert scaling["sharded_identical"] is True
        assert [row["replicas"] for row in scaling["scaled"]] == [2]
        assert scaling["best_replicas"] == 2
        assert scaling["baseline_searches_per_sec"] > 0
        assert scaling["best_searches_per_sec"] > 0
        assert scaling["speedup"] > 0


class TestOnly:
    def test_only_runs_the_requested_sections(self):
        results = perf.run_all(only=["simulator"], **TINY)
        assert "simulator" in results
        assert "search" not in results
        assert "engine_scaling" not in results
        assert "meta" in results and "text_caches" in results

    def test_only_preserves_section_order(self):
        results = perf.run_all(only=["simulator", "sensitivity"], **TINY)
        sections = [name for name in results
                    if name in perf.BENCH_SECTIONS]
        assert sections == ["sensitivity", "simulator"]

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="no_such_bench"):
            perf.run_all(only=["no_such_bench"], **TINY)

    def test_empty_only_rejected(self):
        # `--only ,` parses to an empty list: silently measuring
        # nothing (and merging nothing into the baseline) would look
        # like success, so it must be an explicit error.
        with pytest.raises(ValueError, match="no perf sections"):
            perf.run_all(only=[], **TINY)

    def test_profile_section_excluded_by_default(self):
        results = perf.run_all(only=["simulator"], **TINY)
        assert "profile" not in results
        assert "profile" in perf.BENCH_SECTIONS

    def test_profile_section_runs_when_requested(self):
        results = perf.run_all(
            only=["profile"], profile=True,
            profile_nodes=6, profile_searches=2, **TINY)
        section = results["profile"]
        assert section["samples"] > 0
        assert section["scenario"] == "search"
        assert len(section["collapsed_sha256"]) == 64
        shares = section["subsystems"]
        assert sum(row["self"] for row in shares.values()) \
            == section["samples"]

    def test_profile_section_is_deterministic(self):
        kwargs = dict(only=["profile"], profile=True,
                      profile_nodes=6, profile_searches=2, **TINY)
        first = perf.run_all(**kwargs)["profile"]
        second = perf.run_all(**kwargs)["profile"]
        assert first == second

    def test_format_report_tolerates_partial_results(self):
        results = perf.run_all(only=["simulator"], **TINY)
        report = perf.format_report(results)
        assert "events/sec" in report
        assert "indexed speedup" not in report

    def test_compare_skips_sections_missing_from_either_side(
            self, tiny_results):
        partial = perf.run_all(only=["simulator"], **TINY)
        rows = perf.compare(tiny_results, partial)
        assert {row["metric"] for row in rows} == \
            {"simulator.events_per_sec"}


class TestBaselineIO:
    def test_write_load_roundtrip(self, tiny_results, tmp_path):
        path = str(tmp_path / "bench.json")
        perf.write_baseline(tiny_results, path)
        assert perf.load_baseline(path) == json.loads(
            json.dumps(tiny_results))

    def test_format_report_mentions_headlines(self, tiny_results):
        report = perf.format_report(tiny_results)
        assert "indexed speedup" in report
        assert "events/sec" in report
        assert "searches/sec" in report


class TestCompare:
    def test_no_regression_against_self(self, tiny_results):
        rows = perf.compare(tiny_results, tiny_results)
        assert len(rows) == len(perf.THROUGHPUT_KEYS)
        assert not any(row["regressed"] for row in rows)

    def test_inflated_baseline_flags_regression(self, tiny_results):
        inflated = copy.deepcopy(tiny_results)
        inflated["simulator"]["events_per_sec"] *= 100.0
        rows = perf.compare(inflated, tiny_results, tolerance=0.2)
        flagged = {row["metric"] for row in rows if row["regressed"]}
        assert flagged == {"simulator.events_per_sec"}

    def test_tolerance_is_respected(self, tiny_results):
        slightly_better = copy.deepcopy(tiny_results)
        slightly_better["search"]["searches_per_sec"] *= 1.1
        rows = perf.compare(slightly_better, tiny_results, tolerance=0.2)
        assert not any(row["regressed"] for row in rows)


class TestCheckRegression:
    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert check_regression.main(["--baseline", missing]) == 2

    def test_pass_against_own_baseline(self, tiny_results, tmp_path,
                                       capsys):
        path = str(tmp_path / "bench.json")
        perf.write_baseline(tiny_results, path)
        # Re-runs the benches with the baseline's own (tiny) params; a
        # generous tolerance absorbs wall-clock noise in CI.
        assert check_regression.main(
            ["--baseline", path, "--tolerance", "0.95"]) == 0
        assert "no perf regression" in capsys.readouterr().out

    def test_fail_against_inflated_baseline(self, tiny_results, tmp_path,
                                            capsys):
        inflated = copy.deepcopy(tiny_results)
        for section, key in perf.THROUGHPUT_KEYS:
            inflated[section][key] *= 1000.0
        path = str(tmp_path / "bench.json")
        perf.write_baseline(inflated, path)
        assert check_regression.main(["--baseline", path]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_update_writes_baseline(self, tiny_results, tmp_path):
        path = str(tmp_path / "bench.json")
        perf.write_baseline(tiny_results, path)  # params source
        assert check_regression.main(
            ["--baseline", path, "--update"]) == 0
        refreshed = perf.load_baseline(path)
        assert refreshed["meta"]["params"] == tiny_results["meta"]["params"]


#: CLI flags keeping a full `repro perf` run at toy scale.
TINY_FLAGS = ["--history", "100", "--probes", "6", "--events", "1000",
              "--nodes", "4", "--searches", "2", "--monitor-windows", "40",
              "--engine-queries", "8", "--engine-docs-per-topic", "6",
              "--shard-nodes", "30", "60", "--shard-workers", "1", "2",
              "--shard-count", "4", "--shard-duration", "1.5"]


class TestCli:
    def test_perf_subcommand_writes_report(self, tmp_path, capsys,
                                           monkeypatch):
        out = str(tmp_path / "bench.json")
        code = cli_main(["perf", *TINY_FLAGS, "--output", out])
        captured = capsys.readouterr().out
        assert code == 0
        assert "CYCLOSA pipeline perf" in captured
        assert "engine tier" in captured
        written = perf.load_baseline(out)
        assert written["meta"]["params"]["history_size"] == 100

    def test_perf_no_write(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        code = cli_main(["perf", *TINY_FLAGS, "--output", out,
                         "--no-write"])
        assert code == 0
        assert not (tmp_path / "bench.json").exists()

    def test_perf_only_merges_into_existing_baseline(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "bench.json")
        assert cli_main(["perf", *TINY_FLAGS, "--output", out]) == 0
        full = perf.load_baseline(out)
        assert cli_main(["perf", *TINY_FLAGS, "--output", out,
                         "--only", "simulator"]) == 0
        merged = perf.load_baseline(out)
        # The partial run refreshed its section and kept every other
        # section from the committed baseline.
        assert set(merged) == set(full)
        assert merged["search"] == full["search"]

    def test_perf_only_accepts_comma_separated_sections(self, tmp_path,
                                                        capsys):
        out = str(tmp_path / "bench.json")
        code = cli_main(["perf", *TINY_FLAGS, "--output", out,
                         "--only", "simulator,monitor", "--no-write"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "events/sec" in captured
        assert "flight recorder" in captured

    def test_perf_only_unknown_section_exits_2(self, capsys):
        code = cli_main(["perf", "--only", "nope", "--no-write"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown perf sections" in err
        # The error names the valid sections so the fix is one
        # copy-paste away.
        for section in perf.BENCH_SECTIONS:
            assert section in err

    def test_perf_only_empty_exits_2(self, capsys):
        # A stray comma (`--only ,`) must not silently run nothing.
        code = cli_main(["perf", "--only", ",", "--no-write"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no perf sections selected" in err
        for section in perf.BENCH_SECTIONS:
            assert section in err

    def test_perf_profile_section_via_cli(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        code = cli_main(["perf", *TINY_FLAGS, "--output", out,
                         "--only", "profile", "--profile"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "profile (search scenario" in captured
        written = perf.load_baseline(out)
        assert written["profile"]["samples"] > 0
