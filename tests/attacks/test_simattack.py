"""Tests for SimAttack."""

import pytest

from repro.attacks.profiles import UserProfile
from repro.attacks.simattack import SimAttack


def make_attack(threshold=0.5, alpha=0.5):
    profiles = {
        "health-user": UserProfile("health-user"),
        "sports-user": UserProfile("sports-user"),
    }
    for query in ("flu symptoms", "cancer treatment", "flu vaccine",
                  "symptoms headache"):
        profiles["health-user"].add_query(query)
    for query in ("football scores", "basketball playoffs",
                  "football tickets", "hockey league"):
        profiles["sports-user"].add_query(query)
    return SimAttack(profiles, threshold=threshold, alpha=alpha)


class TestSimilarity:
    def test_exact_profile_query_scores_high(self):
        attack = make_attack()
        assert attack.similarity("flu symptoms", "health-user") > 0.5

    def test_unrelated_scores_zero(self):
        attack = make_attack()
        assert attack.similarity("quantum physics", "health-user") == 0.0

    def test_cross_profile_scores_low(self):
        attack = make_attack()
        assert (attack.similarity("flu symptoms", "sports-user")
                < attack.similarity("flu symptoms", "health-user"))

    def test_unknown_user(self):
        attack = make_attack()
        assert attack.similarity("flu", "ghost") == 0.0

    def test_matches_naive_computation(self):
        # The inverted-index fast path must equal the direct definition.
        import math

        from repro.text.smoothing import smoothed_similarity
        from repro.text.vectorize import cosine_binary, query_vector

        attack = make_attack()
        profile = attack.profiles["health-user"]
        query = "flu symptoms treatment"
        naive = smoothed_similarity(
            [cosine_binary(query_vector(query), past)
             for past in profile.query_vectors])
        fast = attack.similarity(query, "health-user")
        assert fast == pytest.approx(naive, abs=1e-9)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SimAttack({}, alpha=0.0)


class TestAttribute:
    def test_attributes_matching_query(self):
        attack = make_attack()
        assert attack.attribute("flu symptoms headache") == "health-user"

    def test_below_threshold_returns_none(self):
        attack = make_attack(threshold=0.99)
        assert attack.attribute("flu") is None

    def test_unknown_terms_return_none(self):
        attack = make_attack()
        assert attack.attribute("xylophone zebra") is None

    def test_ambiguous_tie_returns_none(self):
        profiles = {
            "a": UserProfile("a"),
            "b": UserProfile("b"),
        }
        profiles["a"].add_query("shared term")
        profiles["b"].add_query("shared term")
        attack = SimAttack(profiles)
        assert attack.attribute("shared term") is None


class TestClassifyReal:
    def test_profile_query_classified_real(self):
        attack = make_attack()
        assert attack.classify_real("flu symptoms", "health-user")

    def test_rss_like_fake_classified_fake(self):
        attack = make_attack()
        assert not attack.classify_real("celebrity gossip update",
                                        "health-user")


class TestGroupAttacks:
    def test_pick_real_identified(self):
        attack = make_attack()
        subqueries = ["random words here", "flu symptoms", "more noise"]
        assert attack.pick_real_identified(subqueries, "health-user") == 1

    def test_pick_real_anonymous(self):
        attack = make_attack()
        subqueries = ["zzz yyy", "football scores playoffs", "qqq www"]
        index, user = attack.pick_real_anonymous(subqueries)
        assert index == 1
        assert user == "sports-user"

    def test_pick_real_anonymous_below_threshold(self):
        attack = make_attack(threshold=0.999)
        index, user = attack.pick_real_anonymous(["zzz", "qqq"])
        assert user is None

    def test_realistic_fakes_confuse_group_attack(self):
        attack = make_attack()
        # The fake is a verbatim past query of the *other* user: the
        # joint argmax may now lock onto the fake — CYCLOSA/X-Search's
        # core advantage over synthetic fakes.
        subqueries = ["flu symptoms", "football scores"]
        index, user = attack.pick_real_anonymous(subqueries)
        assert user in ("health-user", "sports-user")
