"""Tests for adversary profile construction."""

from repro.attacks.profiles import UserProfile, build_profiles


class TestProfiles:
    def test_build_covers_all_training_users(self, small_split):
        train, _ = small_split
        profiles = build_profiles(train)
        active = {r.user_id for r in train.records}
        assert set(profiles) == active

    def test_profile_sizes_match_counts(self, small_split):
        train, _ = small_split
        profiles = build_profiles(train)
        for user_id, profile in profiles.items():
            assert len(profile) <= len(train.queries_of(user_id))
            assert len(profile) > 0

    def test_vectors_are_stemmed_term_sets(self, small_split):
        train, _ = small_split
        profiles = build_profiles(train)
        profile = next(iter(profiles.values()))
        assert all(isinstance(v, frozenset) for v in profile.query_vectors)

    def test_add_query_skips_empty(self):
        profile = UserProfile("u")
        profile.add_query("the of and")  # all stopwords
        assert len(profile) == 0
        profile.add_query("flu symptoms")
        assert len(profile) == 1
