"""Tests for repro.text.smoothing."""

import pytest
from hypothesis import given, strategies as st

from repro.text.smoothing import exponential_smoothing, smoothed_similarity


class TestExponentialSmoothing:
    def test_empty_is_zero(self):
        assert exponential_smoothing([]) == 0.0

    def test_single_value_passthrough(self):
        assert exponential_smoothing([0.7]) == pytest.approx(0.7)

    def test_last_value_dominates(self):
        # alpha=0.5: s = 0.5*last + 0.5*previous_smoothed
        assert exponential_smoothing([0.0, 1.0]) == pytest.approx(0.5)

    def test_known_sequence(self):
        # s0=0.2; s1=0.5*0.4+0.5*0.2=0.3; s2=0.5*0.8+0.5*0.3=0.55
        assert exponential_smoothing([0.2, 0.4, 0.8]) == pytest.approx(0.55)

    def test_alpha_one_takes_last(self):
        assert exponential_smoothing([0.1, 0.9], alpha=1.0) == 0.9

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            exponential_smoothing([0.5], alpha=0.0)
        with pytest.raises(ValueError):
            exponential_smoothing([0.5], alpha=1.5)


class TestSmoothedSimilarity:
    def test_sorts_ascending_first(self):
        # Regardless of input order, result is identical.
        assert (smoothed_similarity([0.9, 0.1, 0.5])
                == smoothed_similarity([0.1, 0.5, 0.9]))

    def test_high_match_dominates(self):
        value = smoothed_similarity([0.0] * 50 + [1.0])
        assert value >= 0.5

    def test_all_zeros(self):
        assert smoothed_similarity([0.0] * 10) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=50))
    def test_property_bounded_by_max(self, values):
        result = smoothed_similarity(values)
        upper = max(values) if values else 0.0
        assert 0.0 <= result <= upper + 1e-12

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_property_monotone_in_added_top_value(self, values, extra):
        # Adding a value >= current max never decreases the aggregate.
        top = max(values)
        boosted = values + [max(top, extra)]
        assert (smoothed_similarity(boosted)
                >= smoothed_similarity(values) - 1e-12)
