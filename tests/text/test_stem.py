"""Tests for the Porter stemmer (classic published examples)."""

import pytest
from hypothesis import given, strategies as st

from repro.text.stem import porter_stem

# Examples taken from Porter's 1980 paper, step by step.
CLASSIC_CASES = [
    # step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("caress", "caress"),
    ("cats", "cat"),
    # step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    # step 1b extras
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    # step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # step 5
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", CLASSIC_CASES)
def test_classic_examples(word, expected):
    assert porter_stem(word) == expected


class TestEdgeCases:
    def test_short_words_untouched(self):
        assert porter_stem("a") == "a"
        assert porter_stem("be") == "be"

    def test_search_family_collapses(self):
        stems = {porter_stem(w)
                 for w in ("search", "searches", "searched", "searching")}
        assert len(stems) == 1

    def test_idempotent_on_common_words(self):
        for word in ("symptom", "treatment", "election", "prayer"):
            once = porter_stem(word)
            assert porter_stem(once) == once or len(porter_stem(once)) <= len(once)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
               max_size=20))
def test_property_never_longer_and_never_crashes(word):
    stem = porter_stem(word)
    assert len(stem) <= len(word)
    assert stem  # never empties a word
