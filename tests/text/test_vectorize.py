"""Tests for repro.text.vectorize."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.text.vectorize import (
    add_into,
    cosine_binary,
    cosine_sparse,
    count_vector,
    query_vector,
)


class TestQueryVector:
    def test_stems_and_dedups(self):
        assert query_vector("searching searches") == frozenset({"search"})

    def test_unstemmed_option(self):
        assert query_vector("searching", stem=False) == frozenset({"searching"})

    def test_empty(self):
        assert query_vector("") == frozenset()


class TestCosineBinary:
    def test_identical(self):
        v = frozenset({"a", "b"})
        assert cosine_binary(v, v) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_binary(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_partial_overlap(self):
        a = frozenset({"x", "y"})
        b = frozenset({"y", "z"})
        assert cosine_binary(a, b) == pytest.approx(1 / 2)

    def test_empty_sets(self):
        assert cosine_binary(frozenset(), frozenset({"a"})) == 0.0

    def test_symmetry(self):
        a = frozenset({"a", "b", "c"})
        b = frozenset({"b", "d"})
        assert cosine_binary(a, b) == cosine_binary(b, a)

    @given(st.frozensets(st.text(alphabet="abcde", min_size=1, max_size=3),
                         max_size=8),
           st.frozensets(st.text(alphabet="abcde", min_size=1, max_size=3),
                         max_size=8))
    def test_property_bounds_and_symmetry(self, a, b):
        value = cosine_binary(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == cosine_binary(b, a)


class TestCosineSparse:
    def test_identical(self):
        v = {"a": 2.0, "b": 1.0}
        assert cosine_sparse(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_sparse({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_known_value(self):
        a = {"x": 1.0, "y": 1.0}
        b = {"x": 1.0}
        assert cosine_sparse(a, b) == pytest.approx(1 / math.sqrt(2))

    def test_empty(self):
        assert cosine_sparse({}, {"a": 1.0}) == 0.0


class TestHelpers:
    def test_count_vector(self):
        assert count_vector(["a", "b", "a"]) == {"a": 2.0, "b": 1.0}

    def test_add_into(self):
        target = {"a": 1.0}
        add_into(target, {"a": 2.0, "b": 3.0}, scale=0.5)
        assert target == {"a": 2.0, "b": 1.5}
