"""Tests for repro.text.lda (collapsed Gibbs LDA)."""

import numpy as np
import pytest

from repro.text.lda import fit_lda


def _two_topic_corpus():
    """A trivially separable corpus: 'animal' docs vs 'vehicle' docs."""
    animals = ["cat", "dog", "horse", "bird", "fish"]
    vehicles = ["car", "truck", "train", "plane", "boat"]
    docs = []
    for index in range(30):
        docs.append([animals[(index + j) % 5] for j in range(8)])
        docs.append([vehicles[(index + j) % 5] for j in range(8)])
    return docs, set(animals), set(vehicles)


@pytest.fixture(scope="module")
def separable_model():
    docs, _, _ = _two_topic_corpus()
    return fit_lda(docs, num_topics=2, iterations=80, seed=1)


class TestFit:
    def test_counts_are_consistent(self, separable_model):
        model = separable_model
        assert model.topic_word_counts.sum() == pytest.approx(
            model.topic_totals.sum())
        assert (model.topic_word_counts >= 0).all()

    def test_vocabulary_complete(self, separable_model):
        assert set(separable_model.vocabulary) == {
            "cat", "dog", "horse", "bird", "fish",
            "car", "truck", "train", "plane", "boat"}

    def test_separates_topics(self, separable_model):
        docs, animals, vehicles = _two_topic_corpus()
        top0 = {t for t, _ in separable_model.top_terms(0, 5)}
        top1 = {t for t, _ in separable_model.top_terms(1, 5)}
        assert (top0 == animals and top1 == vehicles) or \
               (top0 == vehicles and top1 == animals)

    def test_deterministic_given_seed(self):
        docs, _, _ = _two_topic_corpus()
        a = fit_lda(docs, num_topics=2, iterations=20, seed=7)
        b = fit_lda(docs, num_topics=2, iterations=20, seed=7)
        assert np.array_equal(a.topic_word_counts, b.topic_word_counts)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            fit_lda([], num_topics=2)
        with pytest.raises(ValueError):
            fit_lda([[], []], num_topics=2)

    def test_invalid_topic_count(self):
        with pytest.raises(ValueError):
            fit_lda([["a"]], num_topics=0)


class TestTopicDistributions:
    def test_phi_sums_to_one(self, separable_model):
        for topic in range(2):
            phi = separable_model.topic_term_distribution(topic)
            assert phi.sum() == pytest.approx(1.0)
            assert (phi > 0).all()

    def test_top_terms_sorted(self, separable_model):
        terms = separable_model.top_terms(0, 10)
        probabilities = [p for _, p in terms]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_corpus_probability_sums_to_one(self, separable_model):
        assert separable_model.corpus_term_probability().sum() == \
            pytest.approx(1.0)


class TestDictionary:
    def test_dictionary_contains_top_terms(self, separable_model):
        # Every term here occurs in half the corpus documents, so the
        # background filter must be relaxed for this toy corpus.
        dictionary = separable_model.term_dictionary(
            topn_per_topic=3, max_doc_frequency=1.01)
        assert len(dictionary) >= 3

    def test_doc_frequency_filter(self):
        # A glue token present in every document must be filtered out.
        docs, _, _ = _two_topic_corpus()
        docs = [doc + ["glue"] for doc in docs]
        model = fit_lda(docs, num_topics=2, iterations=40, seed=2)
        dictionary = model.term_dictionary(topn_per_topic=10,
                                           max_doc_frequency=0.5)
        assert "glue" not in dictionary
        unfiltered = model.term_dictionary(topn_per_topic=10,
                                           max_doc_frequency=1.01)
        assert "glue" in unfiltered


class TestInference:
    def test_infer_topic_mixture(self, separable_model):
        theta = separable_model.infer_topic_mixture(
            ["cat", "dog", "horse", "fish"], iterations=30,
            rng=np.random.default_rng(0))
        assert theta.sum() == pytest.approx(1.0)
        # The animal topic should dominate.
        top0 = {t for t, _ in separable_model.top_terms(0, 5)}
        animal_topic = 0 if "cat" in top0 else 1
        assert theta[animal_topic] > 0.7

    def test_infer_unknown_tokens_uniform(self, separable_model):
        theta = separable_model.infer_topic_mixture(["zzz", "qqq"])
        assert theta[0] == pytest.approx(0.5)
