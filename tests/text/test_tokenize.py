"""Tests for repro.text.tokenize."""

from repro.text.tokenize import STOPWORDS, stemmed_tokens, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Flu SYMPTOMS") == ["flu", "symptoms"]

    def test_splits_on_punctuation(self):
        assert tokenize("best-rated: hotels!") == ["best", "rated", "hotels"]

    def test_drops_stopwords(self):
        assert tokenize("the flu and a cold") == ["flu", "cold"]

    def test_keeps_stopwords_when_asked(self):
        assert "the" in tokenize("the flu", drop_stopwords=False)

    def test_min_length(self):
        assert tokenize("a b cd", drop_stopwords=False) == ["cd"]
        assert tokenize("a b cd", drop_stopwords=False, min_length=1) == \
            ["a", "b", "cd"]

    def test_numbers_kept(self):
        assert tokenize("windows 95") == ["windows", "95"]

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("   !!! ") == []

    def test_stopword_list_plausible(self):
        assert "the" in STOPWORDS and "flu" not in STOPWORDS


class TestStemmedTokens:
    def test_pipeline(self):
        assert stemmed_tokens("searching searches") == ["search", "search"]
