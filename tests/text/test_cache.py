"""Tests for the memoized text stack (repro.text.cache and its wiring).

Correctness first: memoization must never change what the pipeline
returns, and the cache bookkeeping must never touch ``repro.obs``
unless a snapshot consumer explicitly installs the collector.
"""

import pytest

from repro.obs.export import prometheus_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.text.cache import (
    LruCache,
    all_caches,
    cache_stats,
    clear_caches,
    install_metrics,
    publish_metrics,
)
from repro.text.stem import porter_stem
from repro.text.tokenize import stemmed_terms, stemmed_tokens
from repro.text.vectorize import query_vector

# A spread of Porter's published examples (one per algorithm step):
# the lru_cache wrapper must leave every one of them unchanged,
# cold and warm.
PINNED_STEMS = [
    ("caresses", "caress"),      # step 1a
    ("plastered", "plaster"),    # step 1b
    ("hopping", "hop"),          # step 1b extras
    ("happy", "happi"),          # step 1c
    ("relational", "relat"),     # step 2
    ("electriciti", "electr"),   # step 3
    ("adjustment", "adjust"),    # step 4
    ("probate", "probat"),       # step 5
    ("controll", "control"),     # step 5
]


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache("t_basic", maxsize=4)
        with pytest.raises(KeyError):
            cache.lookup("a")
        assert cache.store("a", 1) == 1
        assert cache.lookup("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.evictions == 0

    def test_eviction_is_least_recently_used(self):
        cache = LruCache("t_evict", maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")          # refresh "a"; "b" is now oldest
        cache.store("c", 3)        # evicts "b"
        assert cache.evictions == 1
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_restore_existing_key_does_not_evict(self):
        cache = LruCache("t_restore", maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("a", 10)       # overwrite, not insert
        assert cache.evictions == 0
        assert cache.lookup("a") == 10

    def test_clear_drops_entries_keeps_counters(self):
        cache = LruCache("t_clear", maxsize=4)
        cache.store("a", 1)
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        with pytest.raises(KeyError):
            cache.lookup("a")

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LruCache("t_bad", maxsize=0)

    def test_self_registration_and_stats(self):
        cache = LruCache("t_registered", maxsize=4)
        assert all_caches()["t_registered"] is cache
        stats = cache.stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "size": 0, "maxsize": 4}


class TestMemoizedPipeline:
    def test_pinned_stems_unchanged_cold_and_warm(self):
        porter_stem.cache_clear()
        for word, expected in PINNED_STEMS:
            assert porter_stem(word) == expected  # cold
        for word, expected in PINNED_STEMS:
            assert porter_stem(word) == expected  # warm (cache hit)
        info = porter_stem.cache_info()
        assert info.hits >= len(PINNED_STEMS)

    def test_stemmed_terms_cached_and_immutable(self):
        clear_caches()
        first = stemmed_terms("flu symptoms treatment")
        second = stemmed_terms("flu symptoms treatment")
        assert first is second                       # memo hit
        assert isinstance(first, tuple)              # immutable
        assert stemmed_tokens("flu symptoms treatment") == list(first)

    def test_query_vector_cached_and_immutable(self):
        clear_caches()
        first = query_vector("flu symptoms treatment")
        second = query_vector("flu symptoms treatment")
        assert first is second
        assert isinstance(first, frozenset)

    def test_query_vector_stem_flag_keys_separately(self):
        clear_caches()
        stemmed = query_vector("running shoes", stem=True)
        raw = query_vector("running shoes", stem=False)
        assert stemmed != raw
        assert query_vector("running shoes", stem=False) == raw

    def test_clear_caches_resets_all(self):
        stemmed_terms("some query text")
        porter_stem("elections")
        clear_caches()
        stats = cache_stats()
        assert stats["stemmed_terms"]["size"] == 0
        assert stats["query_vectors"]["size"] == 0
        assert stats["porter_stem"]["size"] == 0

    def test_cache_stats_includes_every_text_cache(self):
        stats = cache_stats()
        for name in ("stemmed_terms", "query_vectors", "porter_stem"):
            assert name in stats
            for key in ("hits", "misses", "evictions", "size", "maxsize"):
                assert key in stats[name]


class TestObsExport:
    def test_publish_metrics_sets_gauges(self):
        clear_caches()
        stemmed_terms("flu symptoms")
        stemmed_terms("flu symptoms")
        registry = MetricsRegistry()
        publish_metrics(registry)
        hits = registry.get("cyclosa_text_cache_hits",
                            cache="stemmed_terms")
        assert hits is not None and hits.value >= 1.0

    def test_install_metrics_appears_in_prometheus_snapshot(self):
        clear_caches()
        query_vector("flu symptoms treatment")
        registry = MetricsRegistry()
        install_metrics(registry)
        text = prometheus_snapshot(registry)
        assert "cyclosa_text_cache_misses" in text
        assert 'cache="query_vectors"' in text
        assert 'cache="porter_stem"' in text

    def test_install_metrics_idempotent(self):
        registry = MetricsRegistry()
        install_metrics(registry)
        install_metrics(registry)
        assert registry._collectors.count(publish_metrics) == 1

    def test_no_obs_coupling_when_disabled(self):
        """Cache use must register nothing in the global OBS registry:
        exporting is strictly pull-based via install_metrics."""
        from repro import obs

        obs.disable(reset=True)
        clear_caches()
        query_vector("private medical question")
        stemmed_terms("private medical question")
        assert prometheus_snapshot(obs.get_registry()) in ("", "\n")
