"""End-to-end text pipeline: the representations every attack and
assessment share must be mutually consistent."""

import pytest
from hypothesis import given, strategies as st

from repro.text.smoothing import smoothed_similarity
from repro.text.stem import porter_stem
from repro.text.tokenize import stemmed_tokens, tokenize
from repro.text.vectorize import cosine_binary, query_vector


class TestPipelineConsistency:
    def test_query_vector_equals_stemmed_tokens(self):
        query = "Searching for the BEST flu treatments!"
        assert query_vector(query) == frozenset(stemmed_tokens(query))

    def test_morphological_variants_converge(self):
        # The whole point of stemming in this pipeline: variants of the
        # same query produce highly similar vectors.
        a = query_vector("searching flu treatments")
        b = query_vector("searched flu treatment")
        assert cosine_binary(a, b) == pytest.approx(1.0)

    def test_profile_similarity_behaves(self):
        history = [query_vector(q) for q in (
            "flu symptoms", "flu vaccine side effects",
            "treating flu at home")]
        related = query_vector("flu treatment")
        unrelated = query_vector("quantum chromodynamics")
        sim_related = smoothed_similarity(
            [cosine_binary(related, past) for past in history])
        sim_unrelated = smoothed_similarity(
            [cosine_binary(unrelated, past) for past in history])
        assert sim_related > 0.3 > sim_unrelated

    def test_stopword_only_queries_vanish(self):
        assert query_vector("the of and to") == frozenset()

    @given(st.text(alphabet="abcdefghij ", min_size=0, max_size=60))
    def test_property_vector_is_stemmed_tokenization(self, text):
        vector = query_vector(text)
        assert vector == frozenset(porter_stem(t) for t in tokenize(text))

    @given(st.text(alphabet="abcdefghij ", min_size=1, max_size=40))
    def test_property_self_similarity_is_max(self, text):
        vector = query_vector(text)
        if vector:
            assert cosine_binary(vector, vector) == pytest.approx(1.0)
