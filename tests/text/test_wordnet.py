"""Tests for the synthetic WordNet."""

import pytest

from repro.datasets.vocabulary import SENSITIVE_TOPICS, build_topic_vocabularies
from repro.text.wordnet import SyntheticWordNet


@pytest.fixture(scope="module")
def wordnet():
    return SyntheticWordNet.build(seed=4)


class TestStructure:
    def test_every_term_has_a_synset(self, wordnet):
        vocabularies = build_topic_vocabularies()
        for vocabulary in vocabularies.values():
            for term in vocabulary.terms[:20]:
                assert wordnet.synsets_of(term), term

    def test_synonyms_share_synset(self, wordnet):
        synset = wordnet.synsets[0]
        if len(synset.lemmas) >= 2:
            first, second = synset.lemmas[:2]
            assert second in wordnet.synonyms(first)

    def test_synonyms_exclude_self(self, wordnet):
        lemma = wordnet.synsets[0].lemmas[0]
        assert lemma not in wordnet.synonyms(lemma)

    def test_unknown_lemma(self, wordnet):
        assert wordnet.domains_of("nonexistentterm") == frozenset()
        assert wordnet.synonyms("nonexistentterm") == frozenset()


class TestDomains:
    def test_every_synset_has_factotum_domain(self, wordnet):
        for synset in wordnet.synsets:
            assert any(d.startswith("factotum/") for d in synset.domains)

    def test_sensitive_dictionary_covers_most_sensitive_terms(self, wordnet):
        vocabularies = build_topic_vocabularies()
        dictionary = wordnet.sensitive_dictionary()
        covered = 0
        total = 0
        for topic in SENSITIVE_TOPICS:
            for term in vocabularies[topic].terms:
                total += 1
                covered += term in dictionary
        # domain_recall default ≈ 0.72 at synset granularity.
        assert 0.55 < covered / total < 0.9

    def test_sensitive_dictionary_mostly_clean(self, wordnet):
        vocabularies = build_topic_vocabularies()
        dictionary = wordnet.sensitive_dictionary()
        neutral_hits = 0
        neutral_total = 0
        for topic, vocabulary in vocabularies.items():
            if vocabulary.sensitive:
                continue
            for term in vocabulary.terms:
                neutral_total += 1
                neutral_hits += term in dictionary
        # polysemy_noise default ≈ 0.045 — small but non-zero.
        assert 0.0 < neutral_hits / neutral_total < 0.15

    def test_single_topic_dictionary(self, wordnet):
        health_only = wordnet.sensitive_dictionary(("health",))
        full = wordnet.sensitive_dictionary()
        assert health_only < full

    def test_deterministic_build(self):
        a = SyntheticWordNet.build(seed=8)
        b = SyntheticWordNet.build(seed=8)
        assert ([s.domains for s in a.synsets]
                == [s.domains for s in b.synsets])

    def test_calibration_knobs_move_coverage(self):
        strict = SyntheticWordNet.build(domain_recall=0.3, seed=1)
        loose = SyntheticWordNet.build(domain_recall=0.95, seed=1)
        assert (len(strict.sensitive_dictionary())
                < len(loose.sensitive_dictionary()))
