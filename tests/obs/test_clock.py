"""Clock abstraction: simulated, wall and manual time agree on the API."""

from __future__ import annotations

import pytest

from repro.net.simulator import Simulator
from repro.obs.clock import Clock, ManualClock, SimulatedClock, WallClock

pytestmark = pytest.mark.obs


def test_wall_clock_is_monotonic():
    clock = WallClock()
    a = clock.now()
    b = clock.now()
    assert b >= a


def test_manual_clock_advances():
    clock = ManualClock(start=5.0)
    assert clock.now() == 5.0
    clock.advance(2.5)
    assert clock.now() == 7.5
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_simulated_clock_tracks_simulator():
    simulator = Simulator()
    clock = SimulatedClock(simulator)
    assert clock.now() == 0.0
    simulator.schedule(3.0, lambda: None)
    simulator.run()
    assert clock.now() == simulator.now == 3.0


def test_simulated_clock_duck_types_on_now():
    class Fake:
        now = 42.0

    assert SimulatedClock(Fake()).now() == 42.0
    with pytest.raises(TypeError):
        SimulatedClock(object())


def test_all_clocks_satisfy_protocol():
    for clock in (WallClock(), ManualClock(), SimulatedClock(Simulator())):
        assert isinstance(clock, Clock)
