"""Telemetry privacy audit: planted leaks are caught, healthy
deployments pass, and real/fake legs are indistinguishable (property
test)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.audit import (FORBIDDEN_ATTRIBUTE_KEYS, AuditReport,
                             AuditViolation, audit_path_indistinguishability,
                             audit_span_attributes, audit_wire_metadata,
                             run_telemetry_audit)
from repro.obs.distributed import assemble
from repro.obs.trace import Span

pytestmark = pytest.mark.obs

TRACE = "trace-000777"


@dataclass
class FakeWireRecord:
    """The TracedMessage surface :func:`audit_wire_metadata` reads."""

    kind: str = "forward"
    src: str = "node000"
    dst: str = "node001"
    wire_image: Optional[bytes] = None


# -- wire privacy --------------------------------------------------------


def test_wire_audit_passes_on_clean_records():
    records = [FakeWireRecord(wire_image=b"\x00\x01sealed-opaque-bytes")]
    scanned = []
    violations = audit_wire_metadata(records, [TRACE], ["flu symptoms"],
                                     scanned=scanned)
    assert violations == [] and scanned == [1]


def test_wire_audit_catches_trace_id_in_payload():
    records = [FakeWireRecord(
        wire_image=b"header:" + TRACE.encode() + b":rest")]
    violations = audit_wire_metadata(records, [TRACE], [])
    assert len(violations) == 1
    assert violations[0].check == "wire"
    assert TRACE in violations[0].detail


def test_wire_audit_catches_query_text_in_kind():
    records = [FakeWireRecord(kind="forward:flu symptoms")]
    violations = audit_wire_metadata(records, [], ["flu symptoms"])
    assert [v.check for v in violations] == ["wire"]


# -- span attribute hygiene ----------------------------------------------


def _span(name, span_id, parent_id=None, start=0.0, end=1.0, **attributes):
    return Span(name=name, trace_id=TRACE, span_id=span_id,
                parent_id=parent_id, start=start, end=end,
                attributes=attributes)


def test_span_audit_passes_on_hygienic_attributes():
    spans = [_span("engine.serve", 1, node="engine", path=0,
                   status="ok", hits=5, query_bucket=17)]
    assert audit_span_attributes(spans, ["flu symptoms"]) == []


@pytest.mark.parametrize("key", sorted(FORBIDDEN_ATTRIBUTE_KEYS))
def test_span_audit_flags_every_forbidden_key(key):
    spans = [_span("relay.forward", 1, **{key: "x"})]
    violations = audit_span_attributes(spans, [])
    assert len(violations) == 1 and violations[0].check == "span-attr"
    assert repr(key) in violations[0].detail


def test_span_audit_flags_query_text_in_values():
    spans = [_span("engine.serve", 1, note="served flu symptoms fast")]
    violations = audit_span_attributes(spans, ["flu symptoms"])
    assert [v.check for v in violations] == ["span-attr"]


# -- path indistinguishability -------------------------------------------


def _two_leg_trace(second_leg_extra=None):
    spans = [
        _span("search", 1, None, 0.0, 5.0, node="client"),
        _span("path", 2, 1, 0.0, 2.0, node="client", path=0,
              relay="relay-a"),
        _span("relay.forward", 3, 2, 0.5, 1.5, node="relay-a", path=0),
        _span("path", 4, 1, 0.0, 3.0, node="client", path=1,
              relay="relay-b"),
        _span("relay.forward", 5, 4, 0.5, 2.5, node="relay-b", path=1,
              **(second_leg_extra or {})),
    ]
    return assemble(TRACE, spans)


def test_shape_audit_passes_when_legs_match():
    assert audit_path_indistinguishability(_two_leg_trace()) == []


def test_shape_audit_flags_attribute_key_asymmetry():
    # an extra key on one leg's relay span distinguishes it
    trace = _two_leg_trace(second_leg_extra={"retries": 1})
    violations = audit_path_indistinguishability(trace)
    assert [v.check for v in violations] == ["path-shape"]
    assert "leg 1" in violations[0].detail


def test_shape_audit_ignores_client_side_asymmetry():
    # the client may annotate its own spans (it knows its query);
    # only remote spans are compared.
    spans = [
        _span("search", 1, None, 0.0, 5.0, node="client"),
        _span("path", 2, 1, 0.0, 2.0, node="client", path=0, engine=True),
        _span("relay.forward", 3, 2, 0.5, 1.5, node="relay-a", path=0),
        _span("path", 4, 1, 0.0, 3.0, node="client", path=1),
        _span("relay.forward", 5, 4, 0.5, 2.5, node="relay-b", path=1),
    ]
    assert audit_path_indistinguishability(assemble(TRACE, spans)) == []


def test_shape_audit_skips_single_leg_traces():
    spans = [
        _span("search", 1, None, 0.0, 5.0, node="client"),
        _span("relay.forward", 2, 1, 0.5, 1.5, node="relay-a", path=0),
    ]
    assert audit_path_indistinguishability(assemble(TRACE, spans)) == []


def test_report_format_carries_verdict_and_counts():
    report = AuditReport(messages_scanned=10, spans_scanned=20,
                         traces_checked=2)
    assert "PASS" in report.format() and report.ok
    report.violations.append(AuditViolation("wire", "leak"))
    rendered = report.format()
    assert "FAIL" in rendered and "[wire] leak" in rendered


def test_check_obs_leak_gate_exits_zero(capsys):
    from benchmarks.check_obs_leak import main

    rc = main(["--nodes", "8", "--seed", "3", "--queries", "gate probe"])
    assert rc == 0
    assert "telemetry privacy audit: PASS" in capsys.readouterr().out


# -- the live deployment -------------------------------------------------


@pytest.fixture(scope="module")
def audited_deployment():
    """One audited run, cached: (report, assembled traces, client node).

    Captured before the autouse ``_reset_obs`` fixture wipes the
    global obs state between tests.
    """
    from repro.core.client import CyclosaNetwork

    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(num_nodes=16, seed=5, observe=True)
    queries = ["flu symptoms treatment", "cheap flights paris"]
    report = run_telemetry_audit(deployment, queries, drain_seconds=60.0)
    # drive two more searches whose trace ids we hold explicitly — the
    # sink also contains background/blending searches whose legs may
    # still be in flight, which would make a poor property-test corpus.
    results = [deployment.node(index).search(query)
               for index, query in enumerate(queries)]
    deployment.run(60.0)
    traces = [deployment.assembled_trace(result.trace_id)
              for result in results]
    obs.disable(reset=True)
    return report, traces


def test_live_deployment_passes_the_full_audit(audited_deployment):
    report, traces = audited_deployment
    assert report.ok, report.format()
    assert report.messages_scanned > 0
    assert report.spans_scanned > 0
    assert report.traces_checked == 2
    assert len(traces) == 2


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_real_and_fake_legs_are_shape_indistinguishable(
        audited_deployment, data):
    """Property: pick any trace and any two fan-out legs — the spans
    other nodes emitted for them have identical shapes (same names,
    same attribute keys). Path 0 carries the real query, so this is
    exactly real/fake indistinguishability from the telemetry stream.
    """
    from repro.obs.audit import PATH_SCOPED_SPANS, _path_shape

    _, traces = audited_deployment
    trace = data.draw(st.sampled_from(traces))
    client = trace.root.attributes["node"]
    legs = {}
    for span in trace.spans:
        if span.name not in PATH_SCOPED_SPANS:
            continue
        if span.attributes.get("node", client) == client:
            continue
        path = span.attributes.get("path")
        if isinstance(path, int):
            legs.setdefault(path, []).append(span)
    assert len(legs) >= 2
    first, second = data.draw(
        st.tuples(st.sampled_from(sorted(legs)),
                  st.sampled_from(sorted(legs))))
    assert _path_shape(legs[first]) == _path_shape(legs[second])
