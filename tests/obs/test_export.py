"""Exporter round-trips: JSON-lines traces and Prometheus snapshots."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.clock import ManualClock
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import (_escape, _unescape, chrome_trace,
                              openmetrics_snapshot, parse_prometheus,
                              parse_sample_name, parse_trace_jsonl,
                              prometheus_snapshot, sample_key,
                              span_to_dict, trace_to_jsonl)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, TraceSink

pytestmark = pytest.mark.obs


def _sample_spans():
    clock = ManualClock()
    tracer = Tracer(clock=clock, sink=TraceSink())
    root = tracer.start_span("search", attributes={"k": 3})
    clock.advance(0.25)
    child = tracer.start_span("engine", parent=root)
    clock.advance(0.5)
    tracer.end_span(child)
    tracer.end_span(root)
    return tracer.sink.spans


def test_trace_jsonl_round_trip():
    spans = _sample_spans()
    text = trace_to_jsonl(spans)
    assert len(text.splitlines()) == len(spans)
    for line in text.splitlines():
        json.loads(line)  # every line is standalone JSON
    parsed = parse_trace_jsonl(text)
    assert [span_to_dict(s) for s in parsed] == \
        [span_to_dict(s) for s in spans]
    assert parsed[1].attributes == {"k": 3}
    assert parsed[0].parent_id == parsed[1].span_id


def test_parse_trace_jsonl_skips_blank_lines():
    text = trace_to_jsonl(_sample_spans())
    assert len(parse_trace_jsonl("\n" + text + "\n\n")) == 2


def _distributed_spans():
    return [
        Span("search", "trace-000001", 1, None, 0.0, 2.0,
             {"node": "client"}),
        Span("path", "trace-000001", 2, 1, 0.0, 1.5,
             {"node": "client", "path": 1}),
        Span("relay.forward", "trace-000001", 3, 2, 0.25, 1.25,
             {"node": "relay-a", "path": 1}),
    ]


def test_chrome_trace_layout():
    payload = json.loads(chrome_trace(_distributed_spans()))
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    # one process per node, metadata first
    assert [e["args"]["name"] for e in meta] == ["client", "relay-a"]
    assert events[:len(meta)] == meta
    assert len(complete) == 3
    by_name = {e["name"]: e for e in complete}
    # microsecond scaling and leg-as-thread layout
    assert by_name["relay.forward"]["ts"] == pytest.approx(0.25e6)
    assert by_name["relay.forward"]["dur"] == pytest.approx(1.0e6)
    assert by_name["relay.forward"]["tid"] == 1
    assert by_name["search"]["tid"] == 0
    assert by_name["search"]["pid"] != by_name["relay.forward"]["pid"]
    assert by_name["path"]["args"]["parent_id"] == 1
    assert by_name["path"]["cat"] == "trace-000001"


def test_chrome_trace_dedupes_filters_and_skips_unfinished():
    spans = _distributed_spans()
    spans.append(spans[2])  # same span via a second sink
    spans.append(Span("open", "trace-000001", 9, 1, 0.1, None, {}))
    spans.append(Span("other", "trace-000002", 10, None, 0.0, 1.0, {}))
    payload = json.loads(chrome_trace(spans, trace_id="trace-000001"))
    names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert sorted(names) == ["path", "relay.forward", "search"]


def test_chrome_trace_is_deterministic():
    assert chrome_trace(_distributed_spans()) == \
        chrome_trace(_distributed_spans())


def test_chrome_trace_empty_input():
    payload = json.loads(chrome_trace([]))
    assert payload["traceEvents"] == []


def test_prometheus_snapshot_counters_and_gauges():
    registry = MetricsRegistry()
    registry.counter("cyclosa_q_total", "queries", mode="real").inc(3)
    registry.gauge("cyclosa_pages", "committed pages").set(17)
    text = prometheus_snapshot(registry)
    assert "# HELP cyclosa_q_total queries" in text
    assert "# TYPE cyclosa_q_total counter" in text
    assert 'cyclosa_q_total{mode="real"} 3' in text
    assert "# TYPE cyclosa_pages gauge" in text
    assert "cyclosa_pages 17" in text


def test_prometheus_snapshot_histogram_shape():
    registry = MetricsRegistry()
    hist = registry.histogram("cyclosa_lat_seconds", "latency",
                              buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    samples = parse_prometheus(prometheus_snapshot(registry))
    assert samples['cyclosa_lat_seconds_bucket{le="0.1"}'] == 1
    assert samples['cyclosa_lat_seconds_bucket{le="1"}'] == 2
    assert samples['cyclosa_lat_seconds_bucket{le="+Inf"}'] == 3
    assert samples["cyclosa_lat_seconds_count"] == 3
    assert samples["cyclosa_lat_seconds_sum"] == pytest.approx(5.55)


def test_prometheus_header_emitted_once_per_family():
    registry = MetricsRegistry()
    registry.counter("cyclosa_r_total", "rounds", mode="push").inc()
    registry.counter("cyclosa_r_total", "rounds", mode="push_pull").inc()
    text = prometheus_snapshot(registry)
    assert text.count("# TYPE cyclosa_r_total counter") == 1
    assert text.count("cyclosa_r_total{") == 2


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("cyclosa_e_total", gate='we"ird\\name').inc()
    text = prometheus_snapshot(registry)
    assert 'gate="we\\"ird\\\\name"' in text


def test_empty_registry_snapshot_is_empty():
    assert prometheus_snapshot(MetricsRegistry()) == ""
    assert parse_prometheus("") == {}
    assert math.isinf(parse_prometheus('x_bucket{le="+Inf"} +Inf'
                                       )['x_bucket{le="+Inf"}'])


# -- OpenMetrics sibling -----------------------------------------------


def test_openmetrics_snapshot_ends_with_eof():
    registry = MetricsRegistry()
    registry.counter("cyclosa_q_total", "queries", mode="real").inc(3)
    registry.gauge("cyclosa_pages", "pages").set(17)
    text = openmetrics_snapshot(registry)
    assert text.endswith("# EOF\n")
    assert text.count("# EOF") == 1
    # Same sample lines as the Prometheus exposition, so the existing
    # parser reads both (it ignores comment lines).
    assert parse_prometheus(text) == parse_prometheus(
        prometheus_snapshot(registry))


def test_openmetrics_counter_family_drops_total_suffix():
    registry = MetricsRegistry()
    registry.counter("cyclosa_q_total", "queries", mode="real").inc(3)
    text = openmetrics_snapshot(registry)
    # OpenMetrics: the *family* is named without _total, samples keep it.
    assert "# TYPE cyclosa_q counter" in text
    assert "# HELP cyclosa_q queries" in text
    assert 'cyclosa_q_total{mode="real"} 3' in text


def test_openmetrics_empty_registry_is_just_eof():
    assert openmetrics_snapshot(MetricsRegistry()) == "# EOF\n"


def test_openmetrics_histogram_keeps_full_name():
    registry = MetricsRegistry()
    registry.histogram("cyclosa_lat_seconds", "lat",
                       buckets=(0.1,)).observe(0.05)
    text = openmetrics_snapshot(registry)
    assert "# TYPE cyclosa_lat_seconds histogram" in text
    assert 'cyclosa_lat_seconds_bucket{le="0.1"} 1' in text


# -- sample-key round-trip ---------------------------------------------


def test_sample_key_sorts_labels_canonically():
    assert sample_key("cyclosa_x", {"b": "2", "a": "1"}) == \
        'cyclosa_x{a="1",b="2"}'
    assert sample_key("cyclosa_x", {}) == "cyclosa_x"


def test_parse_sample_name_inverts_sample_key():
    labels = {"status": "ok", "gate": 'we"ird\\name', "nl": "a\nb"}
    name, parsed = parse_sample_name(sample_key("cyclosa_x", labels))
    assert name == "cyclosa_x"
    assert parsed == labels
    assert parse_sample_name("cyclosa_plain") == ("cyclosa_plain", {})


def test_unescape_inverts_escape():
    tricky = 'plain we"ird \\ back\\slash line\nbreak tail\\'
    assert _unescape(_escape(tricky)) == tricky


@given(st.dictionaries(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
    st.text(min_size=0, max_size=32), max_size=4))
def test_sample_key_round_trip_property(labels):
    """parse_sample_name is a true inverse of sample_key for any label
    values the escaper can carry (quotes, backslashes, newlines...)."""
    name, parsed = parse_sample_name(sample_key("cyclosa_prop", labels))
    assert name == "cyclosa_prop"
    assert parsed == labels


@given(st.text(min_size=0, max_size=64))
def test_escape_round_trip_property(value):
    assert _unescape(_escape(value)) == value
