"""The engine cache must be invisible on the wire.

Satellite of the engine scale-out PR: a Hypothesis property drives the
replica tier twice under the same seed — once with the result caches
on (a hit-heavy repetitive workload genuinely serves from memory) and
once with them off (every serve is a miss) — and asserts the wiretap's
``(kind, size, timing-bucket)`` view is *identical* in both worlds.
Also covers :func:`repro.obs.audit.wire_fingerprint` and the
deployment-level :func:`audit_cache_indistinguishability` check that
``benchmarks/check_obs_leak.py`` gates CI on.
"""

import random
from collections import Counter

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import LogNormalLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode
from repro.net.trace import MessageTrace
from repro.obs.audit import audit_cache_indistinguishability, wire_fingerprint
from repro.searchengine.cache import ResultCache
from repro.searchengine.corpus import build_corpus
from repro.searchengine.node import SearchEngineNode
from repro.searchengine.sharding import build_shard_engines, replica_addresses

pytestmark = pytest.mark.obs

QUERY_POOL = [
    "symptoms cancer treatment",
    "cheap flights travel",
    "football league scores",
    "laptop review budget",
]

_CORPUS = build_corpus(docs_per_topic=8, seed=2)
_ENGINES = build_shard_engines(_CORPUS, 2)
_ADDRESSES = replica_addresses(2)


def run_tier(with_cache, workload, seed):
    """Drive the 2-replica tier through *workload* (query indices, with
    repeats) and return the wiretap fingerprint of every transmission.

    Identical *seed* means identical rng draws for TLS handshakes,
    sealing nonces and processing latency — the cache is the only
    difference between the two worlds.
    """
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, rng,
                  default_latency=LogNormalLatency(median=0.01, sigma=0.3))
    nodes = [
        SearchEngineNode(
            net, _ENGINES[index], rng, address=_ADDRESSES[index],
            processing=LogNormalLatency(median=0.05, sigma=0.2),
            cluster=_ADDRESSES,
            response_cache=ResultCache(32) if with_cache else None,
            partial_cache=ResultCache(32) if with_cache else None,
            batch_window=0.1)
        for index in range(2)
    ]
    for first in nodes:
        for second in nodes:
            if first is not second:
                first.tls.establish(second.address,
                                    on_ready=lambda channel: None)
    sim.run(until=2.0)
    sender = NetNode(net, "sender00")
    answered = []
    with MessageTrace(net) as tap:
        for step, query_index in enumerate(workload):
            sim.post(step * 0.5, lambda q=QUERY_POOL[query_index]:
                     sender.request("engine", {"query": q, "meta": {}},
                                    answered.append, timeout=60.0,
                                    kind="search"))
        sim.run()
    assert len(answered) == len(workload)
    hits = sum(node.response_cache.hits for node in nodes) if with_cache \
        else 0
    return wire_fingerprint(tap), hits


class TestTapDistributionProperty:
    @settings(max_examples=8, deadline=None)
    @given(workload=st.lists(st.integers(min_value=0,
                                         max_value=len(QUERY_POOL) - 1),
                             min_size=2, max_size=6),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_hit_heavy_and_miss_only_worlds_agree(self, workload, seed):
        cached, _ = run_tier(True, workload, seed)
        uncached, _ = run_tier(False, workload, seed)
        # Distribution view (what the satellite pins): every
        # (kind, size, timing-bucket) cell has the same mass.
        bucket = lambda fp: Counter(
            (kind, size, round(time, 3))
            for kind, _, _, size, time in fp)
        assert bucket(cached) == bucket(uncached)
        # And in fact the full ordered capture agrees transmission for
        # transmission — the stronger invariant the audit enforces.
        assert cached == uncached

    def test_the_cache_genuinely_hits(self):
        # Guard against vacuity: a repetitive workload must actually
        # serve from memory in the cached world.
        workload = [0, 1, 0, 1, 0, 1]
        cached, hits = run_tier(True, workload, seed=7)
        uncached, _ = run_tier(False, workload, seed=7)
        assert hits > 0
        assert cached == uncached


class TestWireFingerprint:
    def test_projects_adversary_visible_fields_in_order(self):
        records = [
            type("R", (), dict(kind="search", src="a", dst="b",
                               size_bytes=128, time=1.23456789012))(),
            type("R", (), dict(kind="shard", src="b", dst="c",
                               size_bytes=512, time=2.0))(),
        ]
        assert wire_fingerprint(records) == [
            ("search", "a", "b", 128, 1.23456789),
            ("shard", "b", "c", 512, 2.0),
        ]


class TestDeploymentAudit:
    def test_audit_passes_on_a_seeded_replica_deployment(self):
        from repro.core.client import CyclosaNetwork
        from repro.core.config import CyclosaConfig

        def make_deployment(with_cache):
            return CyclosaNetwork.create(
                num_nodes=4, seed=11,
                config=CyclosaConfig(
                    engine_replicas=2,
                    engine_cache_size=64 if with_cache else None))

        queries = ["symptoms cancer", "symptoms cancer", "cheap flights",
                   "symptoms cancer"]
        report = audit_cache_indistinguishability(
            make_deployment, queries, drain_seconds=40.0)
        assert report.ok, report.violations
        assert report.messages_scanned > 0
