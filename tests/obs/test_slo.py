"""SLO rules and the multi-window burn-rate monitor."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.slo import (BURN_CAP, BoundedGaugeSlo, BurnRatePolicy,
                           LatencyQuantileSlo, SloSpec, SuccessRateSlo,
                           _burn, _merge_ranges, evaluate_slo,
                           format_slo_report)
from repro.obs.timeseries import Window, WindowHistogram

pytestmark = pytest.mark.obs

POLICY = BurnRatePolicy(short_windows=2, long_windows=4, factor=2.0)


def _window(index, counters=None, gauges=None, histograms=None):
    return Window(index=index, start=index * 10.0, end=(index + 1) * 10.0,
                  counters=counters or {}, cumulative={},
                  gauges=gauges or {}, histograms=histograms or {})


def _result_windows(per_window):
    """``per_window``: list of (ok, captcha) counter deltas."""
    return [
        _window(i, counters={
            'cyclosa_core_search_results_total{status="ok"}': ok,
            'cyclosa_core_search_results_total{status="captcha"}': bad,
        })
        for i, (ok, bad) in enumerate(per_window)]


# -- rules -------------------------------------------------------------


def test_success_rate_partitions_by_status_label():
    rule = SuccessRateSlo(name="s", target=0.9)
    window = _result_windows([(8, 2)])[0]
    assert rule.window_events(window) == (8.0, 2.0)
    assert rule.window_events(_window(5)) is None  # no data → no burn
    assert "status=ok" in rule.describe()


def test_latency_rule_counts_events_against_threshold():
    hist = WindowHistogram(count=20.0, sum=0.0,
                           buckets=((1.0, 10.0), (2.0, 20.0),
                                    (math.inf, 20.0)))
    rule = LatencyQuantileSlo(name="lat", histogram="cyclosa_lat",
                              threshold_seconds=1.5, q=0.95)
    good, bad = rule.window_events(
        _window(0, histograms={"cyclosa_lat": hist}))
    assert good == pytest.approx(15.0)
    assert bad == pytest.approx(5.0)
    assert rule.target == 0.95
    assert rule.window_events(_window(1)) is None
    assert rule.describe() == "p95(cyclosa_lat) <= 1.5s"


def test_bounded_gauge_is_zero_budget():
    rule = BoundedGaugeSlo(name="b", gauge="cyclosa_depth", bound=8.0)
    assert rule.window_events(_window(0, gauges={"cyclosa_depth": 8.0})) \
        == (1.0, 0.0)
    assert rule.window_events(_window(0, gauges={"cyclosa_depth": 9.0})) \
        == (0.0, 1.0)
    assert rule.window_events(_window(0)) is None


# -- burn-rate math ----------------------------------------------------


def test_burn_rate_is_error_rate_over_budget():
    assert _burn(90.0, 10.0, budget=0.1) == pytest.approx(1.0)
    assert _burn(80.0, 20.0, budget=0.1) == pytest.approx(2.0)
    assert _burn(0.0, 0.0, budget=0.1) == 0.0
    assert _burn(99.0, 1.0, budget=0.0) == BURN_CAP  # zero budget
    assert _burn(99.0, 0.0, budget=0.0) == 0.0


def test_merge_ranges():
    assert _merge_ranges([]) == ()
    assert _merge_ranges([3]) == ((3, 3),)
    assert _merge_ranges([3, 4, 5, 9, 10, 14]) == ((3, 5), (9, 10), (14, 14))


def test_policy_validation():
    with pytest.raises(ValueError):
        BurnRatePolicy(short_windows=0)
    with pytest.raises(ValueError):
        BurnRatePolicy(short_windows=5, long_windows=3)
    with pytest.raises(ValueError):
        BurnRatePolicy(factor=0.0)


# -- evaluation --------------------------------------------------------


def test_healthy_run_reports_ok():
    spec = SloSpec(name="t", policy=POLICY,
                   rules=(SuccessRateSlo(name="s", target=0.9),))
    report = evaluate_slo(spec, _result_windows([(10, 0)] * 8))
    assert report.healthy
    assert report.rule("s").verdict == "ok"
    assert report.rule("s").attained == 1.0
    assert report.rule("s").alert_ranges == ()


def test_sustained_breach_alerts_on_the_breach_windows():
    # Clean for 4 windows, then a 4-window storm, then clean again.
    windows = _result_windows(
        [(10, 0)] * 4 + [(2, 8)] * 4 + [(10, 0)] * 4)
    spec = SloSpec(name="t", policy=POLICY,
                   rules=(SuccessRateSlo(name="s", target=0.9),))
    report = evaluate_slo(spec, windows)
    rule = report.rule("s")
    assert report.verdict == "breached"
    assert rule.violating_windows == (4, 5, 6, 7)
    (lo, hi), = rule.alert_ranges
    # The long range needs enough bad mass to heat up: onset may lag a
    # window or two, and the trailing ranges keep alerting at most
    # short_windows past the storm.
    assert 4 <= lo <= 5
    assert 7 <= hi <= 7 + POLICY.short_windows
    assert rule.max_burn >= POLICY.factor


def test_single_window_blip_is_suppressed_by_long_range():
    windows = _result_windows([(10, 0)] * 6 + [(0, 10)] + [(10, 0)] * 6)
    spec = SloSpec(name="t", policy=BurnRatePolicy(
        short_windows=1, long_windows=8, factor=3.0),
        rules=(SuccessRateSlo(name="s", target=0.9),))
    report = evaluate_slo(spec, windows)
    rule = report.rule("s")
    assert rule.violating_windows == (6,)
    assert rule.alert_ranges == ()   # long range never got hot
    assert report.healthy


def test_zero_budget_gauge_alerts_on_any_excursion():
    windows = [_window(i, gauges={"cyclosa_depth": 100.0 if i == 3 else 1.0})
               for i in range(6)]
    spec = SloSpec(name="t", policy=POLICY,
                   rules=(BoundedGaugeSlo(name="b", gauge="cyclosa_depth",
                                          bound=8.0),))
    report = evaluate_slo(spec, windows)
    rule = report.rule("b")
    assert rule.verdict == "breached"
    assert rule.alert_ranges[0][0] == 3
    assert rule.max_burn == BURN_CAP


def test_report_round_trips_canonical_json():
    windows = _result_windows([(10, 0)] * 4 + [(2, 8)] * 4)
    spec = SloSpec(name="t", policy=POLICY,
                   rules=(SuccessRateSlo(name="s", target=0.9),))
    report = evaluate_slo(spec, windows)
    text = report.to_json()
    assert json.loads(text)["verdict"] == "breached"
    assert evaluate_slo(spec, windows).to_json() == text  # deterministic
    assert math.isfinite(json.loads(text)["rules"][0]["max_burn"])


def test_unknown_rule_name_raises():
    spec = SloSpec(name="t", rules=(SuccessRateSlo(name="s", target=0.9),))
    report = evaluate_slo(spec, [])
    with pytest.raises(KeyError):
        report.rule("nope")


def test_format_slo_report_renders_alerts():
    windows = _result_windows([(10, 0)] * 4 + [(2, 8)] * 4)
    spec = SloSpec(name="t", policy=POLICY,
                   rules=(SuccessRateSlo(name="s", target=0.9),))
    text = format_slo_report(evaluate_slo(spec, windows))
    assert "BREACHED" in text
    assert "[FAIL] s:" in text
    assert "burn-rate alerts: windows" in text
