"""Registry semantics and histogram/percentile agreement."""

from __future__ import annotations

import math

import pytest

from repro.metrics.latencystats import percentile, summarize
from repro.obs.metrics import (DEFAULT_BUCKETS, Histogram, MetricsRegistry,
                               RESERVOIR_SIZE)

pytestmark = pytest.mark.obs


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_get_or_create_is_stable(registry):
    a = registry.counter("cyclosa_test_total", "help text")
    b = registry.counter("cyclosa_test_total")
    assert a is b
    a.inc()
    b.inc(2.0)
    assert a.value == 3.0
    with pytest.raises(ValueError):
        a.inc(-1.0)


def test_labels_distinguish_instruments(registry):
    push = registry.counter("cyclosa_rounds_total", mode="push")
    pull = registry.counter("cyclosa_rounds_total", mode="push_pull")
    assert push is not pull
    push.inc()
    assert registry.get("cyclosa_rounds_total", mode="push").value == 1.0
    assert registry.get("cyclosa_rounds_total", mode="push_pull").value == 0.0
    assert registry.get("cyclosa_rounds_total") is None


def test_kind_conflict_raises(registry):
    registry.counter("cyclosa_x_total")
    with pytest.raises(ValueError):
        registry.gauge("cyclosa_x_total")


def test_gauge_moves_both_ways(registry):
    gauge = registry.gauge("cyclosa_pages")
    gauge.set(10.0)
    gauge.inc(5.0)
    gauge.dec(2.5)
    assert gauge.value == 12.5


def test_histogram_buckets_are_cumulative(registry):
    hist = registry.histogram("cyclosa_lat_seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    counts = dict(hist.bucket_counts())
    assert counts[0.1] == 1
    assert counts[1.0] == 3
    assert counts[10.0] == 4
    assert counts[math.inf] == 5
    assert hist.count == 5
    assert hist.sum == pytest.approx(56.05)


def test_histogram_percentiles_match_latencystats():
    hist = Histogram("cyclosa_lat_seconds")
    values = [0.1 * i for i in range(1, 101)]
    for value in values:
        hist.observe(value)
    for q in (0.5, 0.9, 0.99):
        assert hist.percentile(q) == pytest.approx(percentile(values, q))
    expected = summarize(values)
    got = hist.summary()
    assert got.median == pytest.approx(expected.median)
    assert got.p90 == pytest.approx(expected.p90)


def test_histogram_reservoir_is_bounded():
    hist = Histogram("cyclosa_lat_seconds")
    for index in range(RESERVOIR_SIZE + 100):
        hist.observe(float(index))
    assert len(hist.samples) == RESERVOIR_SIZE
    assert hist.count == RESERVOIR_SIZE + 100  # buckets keep everything


def test_collect_reset_and_names(registry):
    registry.counter("cyclosa_b_total")
    registry.counter("cyclosa_a_total")
    registry.histogram("cyclosa_c_seconds")
    assert registry.names() == [
        "cyclosa_a_total", "cyclosa_b_total", "cyclosa_c_seconds"]
    assert [m.name for m in registry.collect()] == [
        "cyclosa_a_total", "cyclosa_b_total", "cyclosa_c_seconds"]
    registry.reset()
    assert registry.names() == []


def test_default_buckets_cover_sgx_to_endtoend():
    assert DEFAULT_BUCKETS[0] <= 1e-6
    assert DEFAULT_BUCKETS[-1] >= 60.0


def test_reservoir_overflow_keeps_most_recent_observations():
    hist = Histogram("cyclosa_lat_seconds")
    total = RESERVOIR_SIZE + 500
    for index in range(total):
        hist.observe(float(index))
    # Oldest 500 evicted; what's retained is exactly the most recent
    # RESERVOIR_SIZE observations, in arrival order.
    assert hist.samples == [float(v) for v in range(500, total)]
    assert hist.sum == pytest.approx(sum(range(total)))


def test_reservoir_overflow_quantiles_stay_cumulative():
    # The bounded reservoir must not bend the bucket math: cumulative
    # bucket counts keep every observation ever made, and identical
    # observation streams keep identical reservoirs (determinism —
    # eviction is FIFO, never sampled).
    first = Histogram("cyclosa_lat_seconds", buckets=(1.0, 10.0))
    second = Histogram("cyclosa_lat_seconds", buckets=(1.0, 10.0))
    for index in range(RESERVOIR_SIZE + 64):
        value = 0.5 if index % 2 == 0 else 5.0
        first.observe(value)
        second.observe(value)
    assert first.samples == second.samples
    counts = dict(first.bucket_counts())
    assert counts[1.0] == (RESERVOIR_SIZE + 64) / 2
    assert counts[math.inf] == RESERVOIR_SIZE + 64
