"""Tests for ``split_engine_service``: the stage-breakdown fix that
separates engine service time from the relay path's network time.

Before the split, the real leg's ``engine`` and ``path`` rows both
reported the same client-observed round trip; now ``engine`` is the
engine-side ``engine.serve`` span's duration and ``path`` is the
remainder (relay hops + links)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import pytest

from repro import obs
from repro.core.client import CyclosaNetwork
from repro.obs.breakdown import (StageTiming, split_engine_service,
                                 stage_breakdown)

pytestmark = pytest.mark.obs


@dataclass
class FakeSpan:
    """Duck-typed stand-in for a tracer span (only the fields
    ``split_engine_service`` reads)."""

    name: str
    duration: float
    trace_id: str = "t1"
    finished: bool = True
    attributes: Dict[str, Any] = field(default_factory=dict)


def make_rows():
    return [
        StageTiming(stage="engine", start=1.0, duration=1.0,
                    attributes={"relay": "node03"}),
        StageTiming(stage="path", start=1.0, duration=1.0,
                    attributes={}),
    ]


class TestUnitSplit:
    def test_rewrites_engine_to_service_and_path_to_remainder(self):
        spans = [
            FakeSpan("path", 1.0, attributes={"relay": "node03", "path": 2}),
            FakeSpan("engine.serve", 0.3, attributes={"path": 2}),
        ]
        rows = split_engine_service(make_rows(), spans, trace_id="t1")
        by_name = {row.stage: row for row in rows}
        assert by_name["engine"].duration == pytest.approx(0.3)
        assert by_name["path"].duration == pytest.approx(0.7)

    def test_degrades_to_path_only_without_a_serve_span(self):
        # The leg is identifiable but the engine never reported serving
        # it (timeout / crash / unobserved replica): the path keeps the
        # round trip and the engine row zeroes out with a status note —
        # the rows must not silently alias the same interval.
        spans = [FakeSpan("path", 1.0,
                          attributes={"relay": "node03", "path": 2})]
        rows = split_engine_service(make_rows(), spans, trace_id="t1")
        by_name = {row.stage: row for row in rows}
        assert by_name["path"].duration == pytest.approx(1.0)
        assert by_name["engine"].duration == 0.0
        assert by_name["engine"].attributes["status"] == "no-serve-span"

    def test_unchanged_without_a_matching_leg(self):
        spans = [
            FakeSpan("path", 1.0, attributes={"relay": "other", "path": 0}),
            FakeSpan("engine.serve", 0.3, attributes={"path": 0}),
        ]
        rows = split_engine_service(make_rows(), spans, trace_id="t1")
        assert all(row.duration == 1.0 for row in rows)

    def test_unchanged_when_service_exceeds_round_trip(self):
        # A clock anomaly (service longer than the observed round trip)
        # must not produce a negative path row.
        spans = [
            FakeSpan("path", 1.0, attributes={"relay": "node03", "path": 2}),
            FakeSpan("engine.serve", 5.0, attributes={"path": 2}),
        ]
        rows = split_engine_service(make_rows(), spans, trace_id="t1")
        assert all(row.duration == 1.0 for row in rows)

    def test_unchanged_without_engine_or_path_rows(self):
        only_engine = [StageTiming(stage="engine", start=0.0, duration=1.0)]
        assert split_engine_service(only_engine, []) == only_engine

    def test_other_trace_spans_are_ignored(self):
        spans = [
            FakeSpan("path", 1.0, trace_id="other",
                     attributes={"relay": "node03", "path": 2}),
            FakeSpan("engine.serve", 0.3, trace_id="other",
                     attributes={"path": 2}),
        ]
        rows = split_engine_service(make_rows(), spans, trace_id="t1")
        assert all(row.duration == 1.0 for row in rows)


class TestEndToEnd:
    def test_real_trace_splits_engine_from_path(self):
        deployment = CyclosaNetwork.create(num_nodes=8, seed=3,
                                           observe=True)
        result = deployment.node(0).search("test query")
        assert result.ok
        spans = (list(obs.get_tracer().sink.spans)
                 + obs.OBS.router.all_spans())
        rows = stage_breakdown(spans, trace_id=result.trace_id)
        before = {row.stage: row.duration for row in rows}
        rows = split_engine_service(rows, spans, trace_id=result.trace_id)
        after = {row.stage: row.duration for row in rows}
        # The fix's point: the two rows no longer alias each other.
        assert after["engine"] < before["engine"]
        assert after["engine"] != after["path"]
        assert after["engine"] > 0 and after["path"] > 0
        # Before the split both rows alias the same client-observed
        # round trip; the split partitions that round trip exactly.
        assert before["engine"] == pytest.approx(before["path"])
        assert after["engine"] + after["path"] == \
            pytest.approx(before["engine"])
