"""Span trees, the bounded sink, and both tracer APIs."""

from __future__ import annotations

import pytest

from repro.net.simulator import Simulator
from repro.obs.clock import ManualClock, SimulatedClock
from repro.obs.trace import NullSink, Tracer, TraceSink

pytestmark = pytest.mark.obs


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock, sink=TraceSink(capacity=16))


def test_context_manager_nesting_parents_inner_spans(tracer, clock):
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            clock.advance(0.5)
        assert tracer.current is outer
    assert tracer.current is None
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert outer.duration == pytest.approx(1.5)
    assert inner.duration == pytest.approx(0.5)
    # inner finished first, so it was recorded first
    assert [s.name for s in tracer.sink.spans] == ["inner", "outer"]


def test_explicit_spans_under_simulated_clock():
    simulator = Simulator()
    tracer = Tracer(clock=SimulatedClock(simulator), sink=TraceSink())
    root = tracer.start_span("search")
    spans = []

    def stage(name):
        span = tracer.start_span(name, parent=root)
        spans.append(tracer.end_span(span))

    simulator.schedule(1.0, lambda: stage("fanout"))
    simulator.schedule(2.0, lambda: stage("engine"))
    simulator.run()
    tracer.end_span(root)
    assert root.start == 0.0 and root.end == 2.0
    starts = [span.start for span in spans]
    assert starts == [1.0, 2.0]
    assert all(span.trace_id == root.trace_id for span in spans)


def test_end_time_override_stamps_modelled_cost(tracer):
    span = tracer.start_span("fake_generation")
    tracer.end_span(span, end_time=span.start + 0.125)
    assert span.duration == pytest.approx(0.125)


def test_end_is_idempotent_and_clamped(tracer, clock):
    span = tracer.start_span("stage")
    clock.advance(1.0)
    tracer.end_span(span)
    first_end = span.end
    clock.advance(1.0)
    tracer.end_span(span)  # no-op
    assert span.end == first_end
    assert len(tracer.sink) == 1

    clamped = tracer.start_span("backwards")
    tracer.end_span(clamped, end_time=clamped.start - 5.0)
    assert clamped.duration == 0.0


def test_trace_ids_are_unique_and_sequential(tracer):
    a = tracer.start_span("one")
    b = tracer.start_span("two")
    assert a.trace_id != b.trace_id
    assert a.span_id != b.span_id


def test_sink_is_a_ring_buffer():
    sink = TraceSink(capacity=4)
    tracer = Tracer(clock=ManualClock(), sink=sink)
    for index in range(10):
        tracer.end_span(tracer.start_span(f"s{index}"))
    assert len(sink) == 4
    assert sink.dropped == 6
    assert [s.name for s in sink.spans] == ["s6", "s7", "s8", "s9"]
    with pytest.raises(ValueError):
        TraceSink(capacity=0)


def test_sink_for_trace_and_ids(tracer):
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    ids = tracer.sink.trace_ids()
    assert len(ids) == 2
    assert [s.name for s in tracer.sink.for_trace(ids[0])] == ["a"]


def test_null_sink_discards_everything():
    tracer = Tracer(clock=ManualClock(), sink=NullSink())
    tracer.end_span(tracer.start_span("gone"))
    assert tracer.sink.spans == []
    assert len(tracer.sink) == 0
