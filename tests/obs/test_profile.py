"""The deterministic sampling profiler: byte-identity, subsystem
attribution, bounded structures, heap windows and the output audit.

The profiler's one non-negotiable property is that two same-seed runs
of the same workload produce *byte-identical* collapsed stacks and
attribution JSON — that is what lets ``benchmarks/check_profile.py``
diff against a committed baseline. Everything else (mapping rules,
caps, the chrome merge, the privacy audit) supports that contract."""

from __future__ import annotations

import json
import sys

import pytest

from repro import obs
from repro.net.simulator import Simulator
from repro.obs.profile import (CODE_LOCATION_RE, OVERFLOW_FRAME,
                               DeterministicProfiler, HeapSampler,
                               compare_attribution, parse_collapsed,
                               subsystem_of_module, subsystem_of_path)

pytestmark = [pytest.mark.obs, pytest.mark.profile]


# -- deterministic workloads -------------------------------------------


def fib(n: int) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def churn(rounds: int) -> int:
    total = 0
    for value in range(rounds):
        total += fib(value % 10)
    return total


def profiled_run(interval: int = 16, rounds: int = 200):
    profiler = DeterministicProfiler(sample_interval=interval,
                                     stack_roots=("tests.obs.test_profile",))
    with profiler:
        churn(rounds)
    return profiler


# -- subsystem mapping --------------------------------------------------


class TestSubsystemMapping:
    def test_repro_packages_map_to_themselves(self):
        assert subsystem_of_module("repro.net.simulator") == "net"
        assert subsystem_of_module("repro.sgx.enclave") == "sgx"
        assert subsystem_of_module("repro.obs.profile") == "obs"

    def test_unknown_repro_submodule_maps_to_other(self):
        assert subsystem_of_module("repro.nonexistent.thing") == "other"
        assert subsystem_of_module("repro") == "other"

    def test_non_repro_maps_to_stdlib(self):
        assert subsystem_of_module("json.decoder") == "stdlib"
        assert subsystem_of_module("hmac") == "stdlib"

    def test_path_mapping_mirrors_module_mapping(self):
        assert subsystem_of_path("/x/src/repro/net/simulator.py") == "net"
        assert subsystem_of_path("/x/src/repro/perf.py") == "perf"
        assert subsystem_of_path("/x/src/repro/__init__.py") == "other"
        assert subsystem_of_path("/usr/lib/python3/json/decoder.py") \
            == "stdlib"
        assert subsystem_of_path(r"C:\x\repro\net\simulator.py") == "net"


# -- core sampling ------------------------------------------------------


class TestSampling:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeterministicProfiler(sample_interval=0)
        with pytest.raises(ValueError):
            DeterministicProfiler(max_depth=0)

    def test_refuses_to_stack_on_a_foreign_hook(self):
        sys.setprofile(lambda *args: None)
        try:
            with pytest.raises(RuntimeError):
                DeterministicProfiler().start()
        finally:
            sys.setprofile(None)
        profiler = DeterministicProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()
        assert sys.getprofile() is None

    def test_samples_every_nth_call_event(self):
        profiler = profiled_run(interval=16)
        assert profiler.samples == profiler.call_events // 16
        assert profiler.samples > 0
        total = sum(profiler.stacks.values())
        assert total == profiler.samples

    def test_same_workload_is_byte_identical(self):
        first = profiled_run()
        second = profiled_run()
        assert first.collapsed_stacks() == second.collapsed_stacks()
        assert first.attribution_json() == second.attribution_json()
        assert first.samples > 0

    def test_stack_roots_cut_callers_above_the_entry_point(self):
        profiler = profiled_run()
        for stack in profiler.stacks:
            # Nothing above this test module survives: no pytest
            # frames, no _pytest plumbing.
            assert not any(frame.startswith("_pytest") for frame in stack)
            assert stack[0].partition(":")[0] == "tests.obs.test_profile"

    def test_self_ticks_sum_to_samples(self):
        profiler = profiled_run()
        attribution = profiler.attribution()
        rows = attribution["subsystems"]
        assert sum(row["self"] for row in rows.values()) \
            == attribution["samples"]
        for row in rows.values():
            assert row["cum"] >= row["self"]

    def test_distinct_stack_cap_overflows_gracefully(self):
        profiler = DeterministicProfiler(
            sample_interval=1, max_stacks=2,
            stack_roots=("tests.obs.test_profile",))
        with profiler:
            churn(60)
        assert profiler.stack_overflows > 0
        assert (OVERFLOW_FRAME,) in profiler.stacks
        assert sum(profiler.stacks.values()) == profiler.samples

    def test_max_depth_counts_truncated_stacks(self):
        profiler = DeterministicProfiler(sample_interval=1, max_depth=3,
                                         stack_roots=("nomatch",))
        with profiler:
            fib(12)
        assert profiler.truncated > 0
        assert all(len(stack) <= 3 for stack in profiler.stacks)

    def test_timeline_only_with_a_clock(self):
        without = profiled_run()
        assert without.timeline == []
        clock = obs.ManualClock()
        profiler = DeterministicProfiler(
            sample_interval=8, clock=clock,
            stack_roots=("tests.obs.test_profile",))
        with profiler:
            churn(50)
        assert profiler.timeline
        assert all(stamp == 0.0 for stamp, _ in profiler.timeline)
        assert all(isinstance(sub, str) for _, sub in profiler.timeline)


# -- collapsed format ---------------------------------------------------


class TestCollapsedFormat:
    def test_roundtrips_through_parse_collapsed(self):
        profiler = profiled_run()
        parsed = parse_collapsed(profiler.collapsed_stacks())
        assert parsed == profiler.stacks

    def test_every_frame_is_a_code_location(self):
        profiler = profiled_run()
        for stack in profiler.stacks:
            for frame in stack:
                assert CODE_LOCATION_RE.match(frame), frame

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_collapsed("no trailing count\n")
        with pytest.raises(ValueError):
            parse_collapsed(" 12\n")

    def test_empty_profile_collapses_to_empty_text(self):
        profiler = DeterministicProfiler()
        assert profiler.collapsed_stacks() == ""
        assert parse_collapsed("") == {}


# -- attribution comparison (the gate core) -----------------------------


class TestCompareAttribution:
    def test_identical_attributions_never_drift(self):
        attribution = profiled_run().attribution()
        rows = compare_attribution(attribution, attribution)
        assert rows and not any(row["drifted"] for row in rows)

    def test_inflated_subsystem_drifts(self):
        baseline = profiled_run().attribution()
        inflated = json.loads(json.dumps(baseline))
        bucket = next(iter(inflated["subsystems"]))
        inflated["subsystems"][bucket]["self_pct"] += 10.0
        rows = compare_attribution(baseline, inflated, tolerance_pct=5.0)
        drifted = [row for row in rows if row["drifted"]]
        assert [row["subsystem"] for row in drifted] == [bucket]

    def test_subsystem_appearing_from_nowhere_drifts(self):
        baseline = profiled_run().attribution()
        fresh = json.loads(json.dumps(baseline))
        fresh["subsystems"]["gossip"] = {
            "self": 9, "cum": 9, "self_pct": 6.0, "cum_pct": 6.0}
        rows = compare_attribution(baseline, fresh, tolerance_pct=5.0)
        by_name = {row["subsystem"]: row for row in rows}
        assert by_name["gossip"]["drifted"]
        assert by_name["gossip"]["self_pct_baseline"] == 0.0


# -- heap sampling ------------------------------------------------------


class TestHeapSampler:
    def test_windows_at_absolute_boundaries(self):
        simulator = Simulator()
        sampler = HeapSampler(simulator, window_seconds=10.0)
        retained = []
        simulator.schedule_at(
            5.0, lambda: retained.append(bytearray(64_000)))
        sampler.start()
        simulator.run(until=35.0)
        boundaries = [row["when"] for row in sampler.windows]
        sampler.stop()
        assert boundaries == [10.0, 20.0, 30.0]
        assert all(row["subsystems"] for row in sampler.windows)

    def test_snapshot_groups_by_subsystem(self):
        simulator = Simulator()
        sampler = HeapSampler(simulator, window_seconds=10.0)
        sampler.start()
        keep = bytearray(128_000)
        row = sampler.snapshot_now()
        sampler.stop()
        assert keep is not None
        buckets = row["subsystems"]
        assert buckets
        for data in buckets.values():
            assert data["size_bytes"] >= 0 and data["blocks"] >= 0

    def test_snapshot_suspends_the_cpu_hook(self):
        simulator = Simulator()
        profiler = DeterministicProfiler(
            sample_interval=1, stack_roots=("tests.obs.test_profile",))
        sampler = HeapSampler(simulator, window_seconds=10.0)
        sampler.start()
        with profiler:
            before = profiler.call_events
            sampler.snapshot_now()
            after = profiler.call_events
        sampler.stop()
        # tracemalloc processing performs thousands of python calls;
        # only the fixed handful of suspension-preamble frames (the
        # snapshot_now/_grouped_row/getprofile calls themselves) may
        # land in the profiler's event stream.
        assert after - before < 10

    def test_rejects_bad_parameters(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            HeapSampler(simulator, window_seconds=0.0)
        with pytest.raises(ValueError):
            HeapSampler(simulator, retention=0)


# -- chrome merge -------------------------------------------------------


class TestChromeMerge:
    def test_profiler_track_rides_in_its_own_process(self):
        clock = obs.ManualClock()
        profiler = DeterministicProfiler(
            sample_interval=4, clock=clock,
            stack_roots=("tests.obs.test_profile",))
        with profiler:
            churn(40)
        document = json.loads(obs.chrome_trace_with_samples([], profiler))
        events = document["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == len(profiler.timeline)
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "profiler" in names
        # Counter totals are monotone: the last event carries the
        # full sample count.
        assert sum(counters[-1]["args"].values()) == profiler.samples


# -- output audit -------------------------------------------------------


class TestProfileAudit:
    def test_clean_profile_passes(self):
        profiler = profiled_run()
        violations = obs.audit_profile_output(
            profiler.collapsed_stacks(), profiler.attribution(),
            queries=["flu symptoms treatment"],
            identities=["node003", "user007"])
        assert violations == []

    def test_smuggled_query_text_is_caught(self):
        collapsed = ("repro.core.node:search;"
                     "flu symptoms treatment:leak 3\n")
        violations = obs.audit_profile_output(
            collapsed, {"subsystems": {}},
            queries=["flu symptoms treatment"])
        checks = {violation.check for violation in violations}
        assert checks == {"profile-output"}
        assert len(violations) >= 2  # bad shape AND needle hit

    def test_malformed_line_is_caught(self):
        violations = obs.audit_profile_output(
            "not a stack line\n", {"subsystems": {}}, queries=[])
        assert violations

    def test_unknown_attribution_bucket_is_caught(self):
        profiler = profiled_run()
        attribution = profiler.attribution()
        attribution["subsystems"]["user007-bucket"] = {
            "self": 1, "cum": 1, "self_pct": 1.0, "cum_pct": 1.0}
        violations = obs.audit_profile_output(
            profiler.collapsed_stacks(), attribution, queries=[])
        assert violations

    def test_overflow_pseudo_frame_is_allowed(self):
        violations = obs.audit_profile_output(
            f"{OVERFLOW_FRAME} 5\n", {"subsystems": {}}, queries=[])
        assert violations == []


# -- scenario harness ---------------------------------------------------


class TestScenarios:
    def test_simulator_scenario_is_byte_identical(self):
        from repro.experiments.profiling import run_scenario

        kwargs = dict(seed=3, num_events=2000, chains=4, heap=False)
        first = run_scenario("simulator", **kwargs)
        second = run_scenario("simulator", **kwargs)
        assert first["collapsed"] == second["collapsed"]
        assert first["cpu"] == second["cpu"]
        assert first["cpu"]["samples"] > 0
        assert first["events"] == second["events"] > 0

    def test_byte_identical_despite_foreign_gc_callback(self):
        # Regression: hypothesis (and other harnesses) leave a Python
        # callback in gc.callbacks to time collections. Automatic GC
        # fires on process-lifetime allocation counts, so that callback
        # injects call events at points that differ between two
        # otherwise-identical runs — shifting every later sample.
        # run_scenario must freeze the cycle collector for the
        # measured pass so the contract survives a polluted process.
        import gc

        events = []

        def noisy_callback(phase, info):
            events.append(phase)

        from repro.experiments.profiling import run_scenario

        thresholds = gc.get_threshold()
        gc.callbacks.append(noisy_callback)
        try:
            kwargs = dict(seed=0, nodes=6, searches=2, heap=False)
            # Wildly different thresholds per run: without the freeze
            # the first run would collect (and fire the callback) ~20x
            # more often than the second, guaranteeing divergence.
            gc.set_threshold(50)
            first = run_scenario("search", **kwargs)
            gc.set_threshold(1000)
            second = run_scenario("search", **kwargs)
        finally:
            gc.callbacks.remove(noisy_callback)
            gc.set_threshold(*thresholds)
        assert first["collapsed"] == second["collapsed"]
        assert first["cpu"] == second["cpu"]
        assert gc.isenabled()

    def test_unknown_scenario_raises(self):
        from repro.experiments.profiling import run_scenario

        with pytest.raises(ValueError):
            run_scenario("bogus")

    def test_search_scenario_attributes_and_audits(self):
        from repro.experiments.profiling import run_scenario

        report = run_scenario("search", seed=1, nodes=6, searches=2)
        assert report["ok"] == 2
        subsystems = report["cpu"]["subsystems"]
        # The pipeline genuinely crosses these layers.
        for sub in ("net", "core", "sgx", "crypto"):
            assert sub in subsystems, sub
        assert report["heap"]["windows"], "no heap windows recorded"
        assert obs.audit_profile_output(
            report["collapsed"], report["cpu"],
            report["audit_needles"]) == []
        # The chrome view parses and carries the profiler process.
        document = json.loads(report["chrome"])
        assert any(e.get("args", {}).get("name") == "profiler"
                   for e in document["traceEvents"])


# -- the CLI surface ----------------------------------------------------


class TestCli:
    def test_profile_subcommand_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = str(tmp_path / "profiles")
        code = cli_main(["profile", "simulator", "--events", "2000",
                         "--seed", "3", "--out", out])
        captured = capsys.readouterr().out
        assert code == 0
        assert "profile scenario 'simulator'" in captured
        assert "hottest stacks" in captured
        collapsed = (tmp_path / "profiles"
                     / "simulator-seed3.collapsed").read_text()
        assert parse_collapsed(collapsed)
        cpu = json.loads((tmp_path / "profiles"
                          / "simulator-seed3.cpu.json").read_text())
        assert cpu["samples"] > 0

    def test_profile_subcommand_json_is_deterministic(self, capsys):
        from repro.cli import main as cli_main

        flags = ["profile", "simulator", "--events", "2000", "--json",
                 "--no-write", "--no-heap"]
        assert cli_main(flags) == 0
        first = capsys.readouterr().out
        assert cli_main(flags) == 0
        second = capsys.readouterr().out
        assert first == second
        assert json.loads(first)["samples"] > 0

    def test_profile_subcommand_rejects_bad_interval(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["profile", "simulator", "--interval", "0",
                         "--no-write"])
        assert code == 2
        assert "sample_interval" in capsys.readouterr().err
