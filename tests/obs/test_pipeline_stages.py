"""End-to-end regression: a protected search emits the six pipeline
stages, in order, and the metrics snapshot carries the SGX counters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.client import CyclosaNetwork
from repro.obs.breakdown import (PIPELINE_STAGES, format_breakdown,
                                 root_span, stage_breakdown)
from repro.obs.export import parse_prometheus, prometheus_snapshot

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def traced_search():
    """One observed deployment + one completed search (module-scoped:
    building the overlay is the expensive part)."""
    deployment = CyclosaNetwork.create(num_nodes=8, seed=3, observe=True)
    result = deployment.node(0).search("test query")
    spans = obs.get_tracer().sink.spans
    snapshot = prometheus_snapshot(obs.get_registry())
    obs.disable()
    return deployment, result, spans, snapshot


def test_search_result_carries_trace_id(traced_search):
    _, result, spans, _ = traced_search
    assert result.ok
    assert result.trace_id is not None
    assert any(s.trace_id == result.trace_id for s in spans)


def test_all_six_stages_present_with_monotonic_starts(traced_search):
    _, result, spans, _ = traced_search
    rows = stage_breakdown(spans, trace_id=result.trace_id)
    stages = [row.stage for row in rows if row.stage in PIPELINE_STAGES]
    assert stages == list(PIPELINE_STAGES)
    starts = [row.start for row in rows if row.stage in PIPELINE_STAGES]
    assert starts == sorted(starts)


def test_stage_spans_parent_to_the_search_root(traced_search):
    _, result, spans, _ = traced_search
    root = root_span(spans, trace_id=result.trace_id)
    assert root is not None and root.finished
    assert root.attributes["k"] == result.k
    for span in spans:
        if span.trace_id == result.trace_id \
                and span.name in PIPELINE_STAGES:
            assert span.parent_id == root.span_id
            assert root.start <= span.start
            assert span.end <= root.end + 1e-9


def test_root_duration_matches_reported_latency(traced_search):
    # The root may extend past the reported latency by the modelled
    # response-filtering charge (microseconds), never by more.
    _, result, spans, _ = traced_search
    root = root_span(spans, trace_id=result.trace_id)
    assert root.duration == pytest.approx(result.latency, abs=1e-3)
    assert root.duration >= result.latency


def test_snapshot_includes_sgx_crossing_and_epc_counters(traced_search):
    _, _, _, snapshot = traced_search
    samples = parse_prometheus(snapshot)
    ecalls = [key for key in samples
              if key.startswith("cyclosa_sgx_ecalls_total")]
    assert ecalls, "no ecall counters in the snapshot"
    assert samples["cyclosa_sgx_crossings_total"] > 0
    assert "cyclosa_sgx_epc_faults_total" in samples
    assert samples["cyclosa_net_messages_total"] > 0
    assert samples["cyclosa_core_searches_total"] >= 1


def test_breakdown_table_renders(traced_search):
    _, result, spans, _ = traced_search
    rows = stage_breakdown(spans, trace_id=result.trace_id)
    root = root_span(spans, trace_id=result.trace_id)
    table = format_breakdown(rows, total=root.duration, t0=root.start)
    for stage in PIPELINE_STAGES:
        assert stage in table
    assert "end-to-end" in table


def test_disabled_by_default_emits_nothing():
    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(num_nodes=6, seed=5,
                                       warmup_seconds=20.0)
    result = deployment.node(0).search("another query")
    assert result.ok
    assert result.trace_id is None
    assert obs.get_tracer().sink.spans == []
    assert obs.get_registry().names() == []
