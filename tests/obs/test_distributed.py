"""Distributed tracing: context codec, per-node sinks, assembly, and
the seeded end-to-end deployment guarantees."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.clock import ManualClock
from repro.obs.distributed import (AssembledTrace, SpanRouter, TraceContext,
                                   assemble, assemble_all, close_remote_span,
                                   open_remote_span, query_hash_bucket)
from repro.obs.trace import Span, Tracer, TraceSink

pytestmark = pytest.mark.obs


# -- TraceContext codec --------------------------------------------------


def test_traceparent_roundtrip():
    ctx = TraceContext("trace-000042", 123, path=7)
    assert TraceContext.from_traceparent(ctx.to_traceparent()) == ctx


def test_traceparent_format_is_fixed_width():
    one = TraceContext("trace-000001", 1, 0).to_traceparent()
    other = TraceContext("trace-000001", 0xFFFF, 3).to_traceparent()
    # Same shape for every leg: a record's size cannot betray its path.
    assert len(one) == len(other)
    assert one.startswith("00-trace-000001-")


@pytest.mark.parametrize("bad", [
    None, 42, "", "garbage", "01-trace-1-0000000000000001-00",
    "00--0000000000000001-00", "00-trace-1-nothex-00",
    "00-trace-1-0000000000000001-zz",
])
def test_malformed_traceparent_returns_none(bad):
    assert TraceContext.from_traceparent(bad) is None


def test_child_reparents_same_path():
    ctx = TraceContext("trace-000009", 5, path=2)
    child = ctx.child(77)
    assert child.trace_id == "trace-000009"
    assert child.parent_span_id == 77
    assert child.path == 2


def test_query_hash_bucket_stable_and_bounded():
    assert query_hash_bucket("flu symptoms") == query_hash_bucket(
        "flu symptoms")
    assert 0 <= query_hash_bucket("anything", buckets=16) < 16
    assert query_hash_bucket("a") != query_hash_bucket("b") or True  # bounded


# -- SpanRouter ----------------------------------------------------------


def _span(tracer, name, node, trace_id="trace-000001", parent=None):
    span = Span(name=name, trace_id=trace_id,
                span_id=tracer.reserve_span_id(), parent_id=parent,
                start=tracer.clock.now(), end=tracer.clock.now(),
                attributes={"node": node})
    return span


def test_router_keeps_per_node_sinks_bounded():
    router = SpanRouter(capacity_per_node=3)
    tracer = Tracer(clock=ManualClock(), sink=TraceSink())
    for i in range(5):
        router.record("relay-a", _span(tracer, f"s{i}", "relay-a"))
    router.record("relay-b", _span(tracer, "other", "relay-b"))
    assert len(router.sink("relay-a")) == 3
    assert router.dropped == 2
    assert sorted(router.nodes()) == ["relay-a", "relay-b"]
    assert len(router) == 4


def test_router_spans_for_trace_filters():
    router = SpanRouter()
    tracer = Tracer(clock=ManualClock(), sink=TraceSink())
    router.record("n1", _span(tracer, "a", "n1", trace_id="trace-000001"))
    router.record("n1", _span(tracer, "b", "n1", trace_id="trace-000002"))
    assert [s.name for s in router.spans_for_trace("trace-000002")] == ["b"]


# -- remote span helpers -------------------------------------------------


def test_open_remote_span_joins_context_not_local_stack():
    clock = ManualClock()
    tracer = Tracer(clock=clock, sink=TraceSink())
    router = SpanRouter()
    ctx = TraceContext("trace-000033", parent_span_id=9, path=4)
    with tracer.span("unrelated_local_work"):
        span = open_remote_span(tracer, "relay.forward", ctx, node="relay-x")
    assert span.trace_id == "trace-000033"
    assert span.parent_id == 9
    assert span.attributes["node"] == "relay-x"
    assert span.attributes["path"] == 4
    clock.advance(1.5)
    close_remote_span(router, "relay-x", span, clock=clock)
    assert span.finished and span.duration == pytest.approx(1.5)
    assert router.sink("relay-x").spans == [span]


def test_close_remote_span_is_idempotent():
    tracer = Tracer(clock=ManualClock(), sink=TraceSink())
    router = SpanRouter()
    ctx = TraceContext("trace-000001", 1, 0)
    span = open_remote_span(tracer, "x", ctx, node="n")
    close_remote_span(router, "n", span, end_time=span.start + 1.0)
    close_remote_span(router, "n", span, end_time=span.start + 9.0)
    assert span.duration == pytest.approx(1.0)
    assert len(router.sink("n")) == 1


# -- assemble ------------------------------------------------------------


def test_assemble_merges_sources_resolves_parentage_and_dedupes():
    clock = ManualClock()
    tracer = Tracer(clock=clock, sink=TraceSink())
    root = tracer.start_span("search")
    trace_id = root.trace_id
    leg_id = tracer.reserve_span_id()
    leg = Span("path", trace_id, leg_id, root.span_id, clock.now(),
               attributes={"path": 0})
    remote = open_remote_span(
        tracer, "relay.forward", TraceContext(trace_id, leg_id, 0),
        node="relay-a")
    clock.advance(2.0)
    for span in (remote, leg):
        span.end = clock.now()
    tracer.end_span(root)

    client = [root, leg]
    router_spans = [remote, remote]  # duplicated source: must dedupe
    trace = assemble(trace_id, client, router_spans)
    assert len(trace) == 3 and not trace.orphans
    assert trace.root is root
    assert trace.parent(remote) is leg
    assert [c.span_id for c in trace.children(leg)] == [remote.span_id]
    assert trace.by_node()["relay-a"] == [remote]
    assert trace.by_path()[0] == [leg, remote]


def test_assemble_reports_orphans_and_skips_unfinished():
    trace = assemble("trace-000001", [
        Span("a", "trace-000001", 1, None, 0.0, 1.0),
        Span("dangling", "trace-000001", 5, 99, 0.2, 0.4),
        Span("unfinished", "trace-000001", 6, 1, 0.1, None),
    ])
    assert [s.span_id for s in trace.spans] == [1, 5]
    assert [s.span_id for s in trace.orphans] == [5]


def test_assemble_all_groups_by_trace_id():
    spans = [Span("a", "trace-000001", 1, None, 0.0, 1.0),
             Span("b", "trace-000002", 2, None, 0.5, 1.5)]
    grouped = assemble_all(spans)
    assert sorted(grouped) == ["trace-000001", "trace-000002"]
    assert all(isinstance(t, AssembledTrace) for t in grouped.values())


# -- seeded end-to-end deployment ----------------------------------------


@pytest.fixture(scope="module")
def traced_deployment():
    # The autouse ``_reset_obs`` fixture wipes the global obs state
    # before every test, so run the deployment once here and capture
    # the assembled trace + router *references* — they survive the
    # reset even though ``obs.OBS`` moves on.
    from repro.core.client import CyclosaNetwork

    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(num_nodes=16, seed=7, observe=True)
    result = deployment.node(0).search("flu symptoms treatment")
    deployment.run(60.0)  # drain the fake legs' responses
    trace = deployment.assembled_trace(result.trace_id)
    router = obs.OBS.router
    obs.disable(reset=True)
    return result, trace, router


def test_e2e_assembled_trace_covers_all_k_plus_1_paths(traced_deployment):
    result, trace, _ = traced_deployment
    assert result.ok and result.k > 0
    assert trace.root is not None and trace.root.name == "search"
    assert not trace.orphans

    by_path = trace.by_path()
    assert sorted(by_path) == list(range(result.k + 1))
    for path, spans in by_path.items():
        names = {s.name for s in spans}
        # every leg: client-side path span, relay residency, unwrap,
        # engine service, response wrap
        assert {"path", "relay.forward", "relay.unwrap",
                "engine.serve", "relay.respond"} <= names


def test_e2e_cross_node_parentage(traced_deployment):
    _, trace, _ = traced_deployment
    client = trace.root.attributes["node"]
    for span in trace.spans:
        if span.name == "relay.forward":
            parent = trace.parent(span)
            assert parent is not None and parent.name == "path"
            assert parent.attributes["node"] == client
            assert parent.attributes["path"] == span.attributes["path"]
            # the relay is a different machine than the client
            assert span.attributes["node"] != client
        if span.name == "engine.serve":
            parent = trace.parent(span)
            assert parent is not None and parent.name == "relay.forward"
            assert span.attributes["node"] == "engine"


def test_e2e_relay_spans_sit_in_their_nodes_sinks(traced_deployment):
    _, trace, router = traced_deployment
    for span in trace.spans:
        if span.name.startswith("relay."):
            node = span.attributes["node"]
            assert span in router.sink(node).spans


def test_e2e_assembled_trace_is_byte_deterministic():
    from repro.core.client import CyclosaNetwork
    from repro.obs.export import chrome_trace, trace_to_jsonl

    def one_run():
        obs.disable(reset=True)
        deployment = CyclosaNetwork.create(num_nodes=12, seed=21,
                                           observe=True)
        result = deployment.node(0).search("deterministic tracing")
        deployment.run(60.0)
        trace = deployment.assembled_trace(result.trace_id)
        return trace_to_jsonl(trace.spans), chrome_trace(trace.spans)

    first_jsonl, first_chrome = one_run()
    second_jsonl, second_chrome = one_run()
    assert first_jsonl == second_jsonl
    assert first_chrome == second_chrome
    assert first_jsonl  # non-trivial dump
