"""Critical-path analysis: synthetic trees with known self-times, the
rendered report, and fleet-wide straggler detection."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.criticalpath import (critical_path, find_stragglers,
                                    format_report, relay_latency_summaries)
from repro.obs.distributed import assemble
from repro.obs.trace import Span

pytestmark = pytest.mark.obs

TRACE = "trace-000001"


def _span(name, span_id, parent_id, start, end, **attributes):
    return Span(name=name, trace_id=TRACE, span_id=span_id,
                parent_id=parent_id, start=start, end=end,
                attributes=attributes)


def _synthetic_trace():
    """root [0, 10] with two legs; leg 1 ends last (the critical one).

    root
    ├── path 0 [0, 4]  relay-a
    │   └── relay.forward [1, 3] relay-a
    └── path 1 [0, 9]  relay-b
        └── relay.forward [2, 8] relay-b
            └── engine.serve [3, 5] engine
    """
    spans = [
        _span("search", 1, None, 0.0, 10.0, node="client"),
        _span("path", 2, 1, 0.0, 4.0, node="client", path=0,
              relay="relay-a"),
        _span("relay.forward", 3, 2, 1.0, 3.0, node="relay-a", path=0),
        _span("path", 4, 1, 0.0, 9.0, node="client", path=1,
              relay="relay-b"),
        _span("relay.forward", 5, 4, 2.0, 8.0, node="relay-b", path=1),
        _span("engine.serve", 6, 5, 3.0, 5.0, node="engine", path=1),
    ]
    return assemble(TRACE, spans)


def test_critical_path_charges_tail_to_latest_child():
    report = critical_path(_synthetic_trace())
    assert report.total == pytest.approx(10.0)
    names = [seg.span.name for seg in report.segments]
    # the sweep follows the latest-ending chain: root -> path 1 ->
    # relay.forward on relay-b -> engine.serve; leg 0 never appears.
    assert names == ["search", "path", "relay.forward", "engine.serve"]
    by_name = {seg.span.name: seg for seg in report.segments}
    assert by_name["search"].self_time == pytest.approx(1.0)  # [9, 10]
    assert by_name["path"].self_time == pytest.approx(3.0)  # [0,2]+[8,9]
    assert by_name["relay.forward"].self_time == pytest.approx(4.0)
    assert by_name["engine.serve"].self_time == pytest.approx(2.0)
    total_explained = sum(seg.self_time for seg in report.segments)
    assert total_explained == pytest.approx(report.total)


def test_critical_path_names_bounding_relay_and_slowest_leg():
    report = critical_path(_synthetic_trace())
    assert report.bounding_relay == "relay-b"
    assert report.slowest_path == 1
    assert report.slowest_relay == "relay-b"
    assert report.path_latencies == {0: pytest.approx(4.0),
                                     1: pytest.approx(9.0)}


def test_critical_path_on_empty_trace():
    report = critical_path(assemble(TRACE, []))
    assert report.total == 0.0 and not report.segments
    assert "no finished root span" in format_report(report)


def test_format_report_renders_relay_and_leg_lines():
    rendered = format_report(critical_path(_synthetic_trace()))
    assert "critical path for trace-000001" in rendered
    assert "bounding relay : relay-b" in rendered
    assert "slowest leg    : path 1 via relay-b" in rendered
    assert "[engine]" in rendered


def test_relay_latency_summaries_groups_by_node():
    spans = [
        _span("relay.forward", 1, None, 0.0, 0.2, node="relay-a"),
        _span("relay.forward", 2, None, 0.0, 0.4, node="relay-a"),
        _span("relay.forward", 3, None, 0.0, 1.0, node="relay-b"),
        _span("relay.unwrap", 4, None, 0.0, 9.0, node="relay-a"),  # ignored
        Span("relay.forward", TRACE, 5, None, 0.0, None,
             {"node": "relay-a"}),  # unfinished: ignored
    ]
    summaries = relay_latency_summaries(spans)
    assert sorted(summaries) == ["relay-a", "relay-b"]
    assert summaries["relay-a"].count == 2
    assert summaries["relay-b"].maximum == pytest.approx(1.0)


def test_find_stragglers_flags_tail_outliers():
    fleet = {}
    for index in range(5):
        fleet[f"relay-{index}"] = relay_latency_summaries(
            [_span("relay.forward", index, None, 0.0, 0.1,
                   node=f"relay-{index}")])[f"relay-{index}"]
    fleet["relay-slow"] = relay_latency_summaries(
        [_span("relay.forward", 99, None, 0.0, 5.0,
               node="relay-slow")])["relay-slow"]
    assert find_stragglers(fleet) == ["relay-slow"]
    assert find_stragglers({}) == []
    # raise the bar far above the outlier: nothing flagged
    assert find_stragglers(fleet, factor=100.0) == []


def test_e2e_report_names_a_deployment_relay():
    from repro.core.client import CyclosaNetwork

    deployment = CyclosaNetwork.create(num_nodes=12, seed=11, observe=True)
    result = deployment.node(0).search("critical path probe")
    deployment.run(60.0)
    trace = deployment.assembled_trace(result.trace_id)
    report = critical_path(trace)
    assert report.total > 0.0
    addresses = {node.address for node in deployment.nodes}
    assert report.bounding_relay in addresses
    assert report.slowest_relay in addresses
    assert sorted(report.path_latencies) == list(range(result.k + 1))

    summaries = relay_latency_summaries(obs.OBS.router.all_spans())
    assert summaries and set(summaries) <= addresses
