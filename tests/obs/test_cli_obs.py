"""CLI smoke tests: ``repro obs`` and ``repro search --trace``."""

from __future__ import annotations

import json

import pytest

from repro import cli, obs

pytestmark = pytest.mark.obs


def test_obs_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["obs", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--format" in out


def test_obs_table_output(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    for stage in ("sensitivity", "adaptive_k", "fake_generation",
                  "fanout", "engine", "response_filtering"):
        assert stage in out


def test_obs_jsonl_output(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--format", "jsonl"])
    assert rc == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    names = {json.loads(line)["name"] for line in lines}
    assert "search" in names and "engine" in names


def test_obs_prom_output(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--format", "prom"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cyclosa_sgx_ecalls_total" in out
    assert "cyclosa_sgx_epc_faults_total" in out


def test_obs_chrome_output_is_trace_event_json(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--format", "chrome"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert any(e["ph"] == "M" and e["name"] == "process_name"
               for e in events)
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert {"search", "path", "relay.forward", "engine.serve"} <= names


def test_obs_critical_output_names_bounding_relay(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--format", "critical"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path for trace-" in out
    assert "bounding relay : node" in out
    assert "slowest leg    : path" in out


def test_obs_audit_passes_and_prints_verdict(capsys):
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--audit"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "telemetry privacy audit: PASS" in out
    assert "violations            : 0" in out


def test_obs_prom_includes_preregistered_collectors(capsys):
    # regression: `enable(fresh=True)` used to drop collectors that
    # modules register at import/process level, so their gauges were
    # missing from every `repro obs --format prom` snapshot.
    calls = []

    def collector(registry):
        calls.append(1)
        registry.gauge("cyclosa_collector_probe", "regression probe").set(7)

    obs.OBS.registry.register_collector(collector)
    rc = cli.main(["obs", "test query", "--nodes", "8", "--seed", "3",
                   "--format", "prom"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cyclosa_collector_probe 7" in out
    assert calls  # the collector ran against the fresh registry


def test_search_trace_prints_breakdown_and_snapshot(capsys):
    rc = cli.main(["search", "--trace", "test query",
                   "--nodes", "8", "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pipeline trace" in out
    assert "response_filtering" in out
    assert "cyclosa_sgx_crossings_total" in out


def test_search_without_trace_leaves_obs_disabled(capsys):
    obs.disable(reset=True)
    rc = cli.main(["search", "test query", "--nodes", "8", "--seed", "3"])
    assert rc == 0
    assert not obs.is_enabled()
    assert "pipeline trace" not in capsys.readouterr().out
