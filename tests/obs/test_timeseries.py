"""Windowed aggregation: boundaries, deltas, quantiles, retention."""

from __future__ import annotations

import math

import pytest

from repro.net.simulator import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (TimeSeriesRecorder, WindowHistogram,
                                  _quantile_from_buckets, _quantile_label,
                                  openmetrics_timeseries)

pytestmark = pytest.mark.obs


def _recorder(window=10.0, **kwargs):
    simulator = Simulator()
    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, simulator,
                                  window_seconds=window, **kwargs)
    return simulator, registry, recorder


# -- boundaries --------------------------------------------------------


def test_windows_sit_on_absolute_boundaries():
    simulator, registry, recorder = _recorder()
    simulator.run(until=3.7)       # recorder started mid-window
    recorder.start()
    simulator.run(until=35.0)
    recorder.stop()
    assert [(w.index, w.start, w.end) for w in recorder.windows] == [
        (0, 0.0, 10.0), (1, 10.0, 20.0), (2, 20.0, 30.0)]


def test_start_baselines_preexisting_counts():
    simulator, registry, recorder = _recorder()
    registry.counter("cyclosa_warm_total", "warmup").inc(50)
    recorder.start()
    registry.counter("cyclosa_warm_total", "warmup").inc(2)
    simulator.run(until=10.0)
    window = recorder.windows[0]
    assert window.counters["cyclosa_warm_total"] == 2
    assert window.cumulative["cyclosa_warm_total"] == 52


def test_counter_deltas_and_gauge_samples_per_window():
    simulator, registry, recorder = _recorder()
    recorder.start()
    counter = registry.counter("cyclosa_events_total", "events")
    gauge = registry.gauge("cyclosa_depth", "depth")
    simulator.schedule_at(2.0, lambda: (counter.inc(3), gauge.set(7)))
    simulator.schedule_at(15.0, lambda: (counter.inc(5), gauge.set(1)))
    simulator.run(until=25.0)
    recorder.stop()
    assert recorder.counter_series("cyclosa_events_total") == [
        (0, 3.0), (1, 5.0)]
    assert recorder.gauge_series("cyclosa_depth") == [(0, 7.0), (1, 1.0)]
    assert recorder.windows[1].cumulative["cyclosa_events_total"] == 8.0


def test_labelled_counters_keep_separate_series():
    simulator, registry, recorder = _recorder()
    recorder.start()
    registry.counter("cyclosa_r_total", "r", status="ok").inc(4)
    registry.counter("cyclosa_r_total", "r", status="captcha").inc()
    simulator.run(until=10.0)
    window = recorder.windows[0]
    assert window.counters['cyclosa_r_total{status="ok"}'] == 4
    assert window.counters['cyclosa_r_total{status="captcha"}'] == 1


def test_stop_cancels_future_flushes():
    simulator, registry, recorder = _recorder()
    recorder.start()
    assert recorder.running
    simulator.run(until=10.0)
    recorder.stop()
    assert not recorder.running
    simulator.run(until=60.0)
    assert len(recorder.windows) == 1


def test_restart_rejected_while_running():
    _, _, recorder = _recorder()
    recorder.start()
    with pytest.raises(RuntimeError):
        recorder.start()


def test_parameter_validation():
    simulator = Simulator()
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        TimeSeriesRecorder(registry, simulator, window_seconds=0.0)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(registry, simulator, retention=0)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(registry, simulator, quantiles=(1.5,))


# -- histograms --------------------------------------------------------


def test_histogram_quantiles_use_window_deltas_not_reservoir():
    simulator, registry, recorder = _recorder()
    recorder.start()
    hist = registry.histogram("cyclosa_lat_seconds", "lat",
                              buckets=(1.0, 2.0, 4.0))
    # Window 0: all observations fast; window 1: all slow. A reservoir
    # across both would blur them; bucket deltas must not.
    simulator.schedule_at(
        1.0, lambda: [hist.observe(0.5) for _ in range(10)])
    simulator.schedule_at(
        11.0, lambda: [hist.observe(3.0) for _ in range(10)])
    simulator.run(until=25.0)
    recorder.stop()
    first = recorder.windows[0].histograms["cyclosa_lat_seconds"]
    second = recorder.windows[1].histograms["cyclosa_lat_seconds"]
    assert first.count == 10 and second.count == 10
    assert first.quantiles["p99"] <= 1.0
    assert 2.0 <= second.quantiles["p50"] <= 4.0
    assert second.sum == pytest.approx(30.0)


def test_quantile_interpolation_matches_hand_math():
    # 10 events in (0,1], 10 in (1,2]: p50 sits at the 1.0 boundary,
    # p75 interpolates halfway into the second bucket.
    buckets = ((1.0, 10.0), (2.0, 20.0), (math.inf, 20.0))
    assert _quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)
    assert _quantile_from_buckets(buckets, 0.75) == pytest.approx(1.5)
    assert _quantile_from_buckets(buckets, 1.0) == pytest.approx(2.0)
    assert _quantile_from_buckets((), 0.5) == 0.0
    assert _quantile_from_buckets(((1.0, 0.0), (math.inf, 0.0)), 0.5) == 0.0


def test_overflow_quantile_clamps_to_last_finite_bound():
    buckets = ((1.0, 0.0), (math.inf, 5.0))  # everything overflowed
    assert _quantile_from_buckets(buckets, 0.99) == 1.0


def test_quantile_of_empty_window_is_zero_at_every_q():
    # An idle window records the bucket schema with all-zero deltas —
    # the estimator must return 0.0 (not NaN, not a division error)
    # at every quantile, including the extremes.
    empty = ((0.5, 0.0), (1.0, 0.0), (2.0, 0.0), (math.inf, 0.0))
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert _quantile_from_buckets(empty, q) == 0.0
        assert _quantile_from_buckets((), q) == 0.0


def test_quantile_single_bucket_interpolates_from_zero():
    # A one-finite-bound histogram: every event landed in (0, 2.0],
    # so quantiles interpolate linearly between 0 and the bound —
    # there is no previous bucket edge to anchor on.
    buckets = ((2.0, 8.0), (math.inf, 8.0))
    assert _quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)
    assert _quantile_from_buckets(buckets, 0.25) == pytest.approx(0.5)
    assert _quantile_from_buckets(buckets, 1.0) == pytest.approx(2.0)
    # q=0 targets cumulative count 0: the interpolation degenerates to
    # the bucket's lower edge.
    assert _quantile_from_buckets(buckets, 0.0) == pytest.approx(0.0)


def test_quantile_single_bucket_all_overflow():
    # Only the +inf bucket saw events: nothing finite to interpolate
    # inside, so every quantile clamps to the last finite bound.
    buckets = ((2.0, 0.0), (math.inf, 3.0))
    for q in (0.1, 0.5, 0.99):
        assert _quantile_from_buckets(buckets, q) == 2.0


def test_empty_window_histogram_quantiles_via_recorder():
    # End-to-end: a histogram family registered but silent during a
    # window must still serialise with zero quantiles for that window.
    simulator, registry, recorder = _recorder()
    recorder.start()
    hist = registry.histogram("cyclosa_lat_seconds", "lat",
                              buckets=(1.0, 2.0))
    simulator.schedule_at(1.0, lambda: hist.observe(0.5))
    # Window 1 (10-20s) sees no observations at all.
    simulator.run(until=25.0)
    recorder.stop()
    idle = recorder.windows[1].histograms["cyclosa_lat_seconds"]
    assert idle.count == 0
    assert all(value == 0.0 for value in idle.quantiles.values())


def test_events_under_interpolates_cumulative_curve():
    hist = WindowHistogram(
        count=20.0, sum=0.0,
        buckets=((1.0, 10.0), (2.0, 20.0), (math.inf, 20.0)))
    assert hist.events_under(1.0) == pytest.approx(10.0)
    assert hist.events_under(1.5) == pytest.approx(15.0)
    assert hist.events_under(5.0) == pytest.approx(20.0)


def test_quantile_labels():
    assert _quantile_label(0.5) == "p50"
    assert _quantile_label(0.99) == "p99"
    assert _quantile_label(0.999) == "p99.9"


# -- retention ---------------------------------------------------------


def test_retention_ring_evicts_oldest_and_counts():
    simulator, registry, recorder = _recorder(window=1.0, retention=3)
    recorder.start()
    simulator.run(until=7.5)
    recorder.stop()
    assert [w.index for w in recorder.windows] == [4, 5, 6]
    assert recorder.evicted == 4
    assert recorder.window_at(0.5) is None
    assert recorder.window_at(4.2).index == 4


# -- determinism & export ----------------------------------------------


def _drive_scripted_run():
    simulator, registry, recorder = _recorder()
    recorder.start()
    counter = registry.counter("cyclosa_events_total", "events")
    hist = registry.histogram("cyclosa_lat_seconds", "lat")
    for step in range(30):
        simulator.schedule_at(
            step * 1.7 + 0.1,
            lambda s=step: (counter.inc(s % 3), hist.observe(0.1 * (s % 7))))
    simulator.run(until=60.0)
    recorder.stop()
    return recorder


def test_to_json_is_byte_identical_across_runs():
    assert _drive_scripted_run().to_json() == _drive_scripted_run().to_json()


def test_openmetrics_timeseries_shape():
    recorder = _drive_scripted_run()
    text = openmetrics_timeseries(recorder.windows)
    assert text.endswith("# EOF\n")
    assert text.count("# EOF") == 1
    # Counter family TYPE line drops the _total suffix; samples keep it
    # and carry the window-end timestamp.
    assert "# TYPE cyclosa_events counter" in text
    assert "cyclosa_events_total" in text
    lines = text.splitlines()
    sample = next(l for l in lines if l.startswith("cyclosa_events_total"))
    assert sample.split()[-1] in {"10", "20", "30", "40", "50", "60"}
    assert "# TYPE cyclosa_lat_seconds histogram" in text
    assert any(l.startswith("cyclosa_lat_seconds_count") for l in lines)
    assert openmetrics_timeseries(
        _drive_scripted_run().windows) == text  # byte-deterministic


def test_collectors_run_at_every_boundary():
    simulator, registry, recorder = _recorder()
    pulls = []

    def collect(reg):
        pulls.append(simulator.now)
        reg.gauge("cyclosa_pull", "pull").set(len(pulls))

    registry.register_collector(collect)
    recorder.start()
    simulator.run(until=30.0)
    recorder.stop()
    # one collect at start() (baseline) + one per boundary flush
    assert pulls == [0.0, 10.0, 20.0, 30.0]
    assert recorder.gauge_series("cyclosa_pull")[-1][0] == 2
