"""Tests for the TrackMeNot, GooPIR and PEAS analytic baselines."""

import pytest

from repro.baselines.base import or_aggregate
from repro.baselines.goopir import GooPir
from repro.baselines.peas import CooccurrenceModel, Peas
from repro.baselines.trackmenot import RssFeedSource, TrackMeNot
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import OR_SEPARATOR, SearchEngine
from repro.text.tokenize import tokenize
import random


class TestOrAggregate:
    def test_contains_real_at_reported_index(self):
        rng = random.Random(1)
        text, index = or_aggregate("real", ["f1", "f2"], rng)
        assert text.split(OR_SEPARATOR)[index] == "real"

    def test_no_fakes(self):
        rng = random.Random(1)
        text, index = or_aggregate("real", [], rng)
        assert text == "real" and index == 0

    def test_position_varies(self):
        rng = random.Random(2)
        positions = {or_aggregate("real", ["a", "b", "c"], rng)[1]
                     for _ in range(40)}
        assert len(positions) == 4


class TestTrackMeNot:
    def test_fakes_under_user_identity(self):
        system = TrackMeNot(fakes_per_query=3, seed=1)
        observations = system.protect("alice", "flu symptoms")
        assert len(observations) == 4
        assert all(o.identity == "alice" for o in observations)
        assert sum(o.is_fake for o in observations) == 3

    def test_real_query_first_and_verbatim(self):
        system = TrackMeNot(seed=1)
        observations = system.protect("alice", "flu symptoms")
        assert observations[0].text == "flu symptoms"
        assert not observations[0].is_fake

    def test_rss_fakes_look_like_headlines(self):
        feed = RssFeedSource(seed=2)
        fakes = [feed.next_fake() for _ in range(20)]
        assert all(1 <= len(fake.split()) <= 4 for fake in fakes)
        assert len(set(fakes)) > 10

    def test_zero_fakes_config(self):
        system = TrackMeNot(fakes_per_query=0, seed=1)
        assert len(system.protect("a", "q")) == 1

    def test_negative_fakes_rejected(self):
        with pytest.raises(ValueError):
            TrackMeNot(fakes_per_query=-1)


class TestGooPir:
    def test_single_or_group(self):
        system = GooPir(k=3, seed=1)
        observations = system.protect("alice", "flu symptoms")
        assert len(observations) == 1
        obs = observations[0]
        assert obs.identity == "alice"
        assert len(obs.subqueries()) == 4
        assert obs.subqueries()[obs.real_index] == "flu symptoms"

    def test_fakes_match_query_width(self):
        system = GooPir(k=5, seed=1)
        obs = system.protect("alice", "three word query")[0]
        for index, subquery in enumerate(obs.subqueries()):
            if index != obs.real_index:
                assert 2 <= len(subquery.split()) <= 4

    def test_filtering_loses_some_results(self):
        engine = SearchEngine(build_corpus(docs_per_topic=20, seed=1))
        system = GooPir(k=3, seed=1)
        query = "symptoms cancer treatment"
        observations = system.protect("alice", query)
        returned = system.results_for(engine, query, observations)
        reference = [h.url for h in engine.search(query)]
        assert set(returned) != set(reference)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            GooPir(k=-1)


class TestCooccurrenceModel:
    def test_observe_and_generate(self):
        model = CooccurrenceModel(random.Random(1))
        for query in ("flu symptoms", "flu vaccine", "cancer symptoms"):
            model.observe(query)
        assert len(model) == 4
        fake = model.generate_fake(2)
        assert all(term in {"flu", "symptoms", "vaccine", "cancer"}
                   for term in fake.split())

    def test_generate_from_empty_model(self):
        model = CooccurrenceModel(random.Random(1))
        assert model.generate_fake(3)  # falls back to a stock phrase

    def test_walk_follows_cooccurrence(self):
        model = CooccurrenceModel(random.Random(5))
        # "alpha beta" always co-occur; "gamma" never with them.
        for _ in range(50):
            model.observe("alpha beta")
            model.observe("gamma delta")
        pairs = [model.generate_fake(2, teleport=0.0) for _ in range(30)]
        crossings = sum(1 for fake in pairs
                        if set(fake.split()) == {"alpha", "delta"}
                        or set(fake.split()) == {"gamma", "beta"})
        assert crossings == 0


class TestPeas:
    def test_identity_is_issuer(self):
        system = Peas(k=3, seed=1)
        system.prime(["past query one", "past query two"])
        obs = system.protect("alice", "flu symptoms")[0]
        assert obs.identity == Peas.ISSUER_IDENTITY
        assert obs.true_user == "alice"

    def test_group_contains_real(self):
        system = Peas(k=3, seed=1)
        system.prime(["some priming queries here"])
        obs = system.protect("alice", "flu symptoms")[0]
        assert obs.subqueries()[obs.real_index] == "flu symptoms"
        assert len(obs.subqueries()) == 4

    def test_fakes_use_observed_vocabulary(self):
        system = Peas(k=2, seed=1)
        system.prime(["football basketball", "tennis golf"])
        obs = system.protect("alice", "hockey games")[0]
        fake_terms = set()
        for index, subquery in enumerate(obs.subqueries()):
            if index != obs.real_index:
                fake_terms.update(tokenize(subquery))
        known = {"football", "basketball", "tennis", "golf", "hockey",
                 "games"}
        assert fake_terms <= known

    def test_fakes_never_echo_current_query(self):
        system = Peas(k=3, seed=1)
        system.prime(["a b", "c d"])
        for _ in range(10):
            obs = system.protect("alice", "unique current query")[0]
            for index, subquery in enumerate(obs.subqueries()):
                if index != obs.real_index:
                    assert subquery != "unique current query"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Peas(k=-2)
