"""Tests for the TrackMeNot network client (periodic background fakes)."""

import random

import pytest

from repro.baselines.trackmenot import TrackMeNotClientNode
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode


@pytest.fixture
def stack():
    rng = random.Random(14)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    engine_node = SearchEngineNode(
        net, SearchEngine(build_corpus(docs_per_topic=8, seed=1)), rng,
        processing=ConstantLatency(0.02))
    client = TrackMeNotClientNode(net, "client", rng, engine_node.address,
                                  fake_interval=20.0, seed=1)
    return sim, engine_node, client


class TestTrackMeNotClient:
    def test_background_fakes_flow_without_user_activity(self, stack):
        sim, engine_node, client = stack
        client.start()
        sim.run(until=300)
        fakes = [e for e in engine_node.tap.entries if e.is_fake]
        assert len(fakes) >= 5
        assert all(e.identity == client.address for e in fakes)

    def test_real_search_full_accuracy(self, stack):
        sim, engine_node, client = stack
        results = []
        client.search("symptoms cancer", results.append)
        sim.run(until=10)
        assert results and results[0]["status"] == "ok"
        direct = engine_node.engine.search("symptoms cancer")
        assert [h["url"] for h in results[0]["hits"]] == \
            [h.url for h in direct]

    def test_engine_knows_the_user(self, stack):
        sim, engine_node, client = stack
        client.search("identity leak probe", lambda r: None)
        sim.run(until=10)
        entry = next(e for e in engine_node.tap.entries
                     if e.text == "identity leak probe")
        assert entry.identity == client.address  # no unlinkability

    def test_fake_rate_matches_interval(self, stack):
        sim, engine_node, client = stack
        client.start()
        sim.run(until=2000)
        # Poisson at 1/20 s over 2000 s ≈ 100 fakes.
        assert 60 <= client.fakes_sent <= 140

    def test_stop_halts_the_clock(self, stack):
        sim, engine_node, client = stack
        client.start()
        sim.run(until=100)
        client.stop()
        sent = client.fakes_sent
        sim.run(until=400)
        assert client.fakes_sent == sent

    def test_start_idempotent(self, stack):
        sim, engine_node, client = stack
        client.start()
        client.start()
        sim.run(until=100)
        # A double start must not double the rate.
        assert client.fakes_sent <= 12
