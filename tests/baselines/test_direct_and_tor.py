"""Tests for the Direct and TOR baselines."""

import random

import pytest

from repro.baselines.direct import DirectClientNode, DirectSearch
from repro.baselines.tor import (
    TorClientNode,
    TorSearch,
    build_tor_network,
)
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode


class TestDirectAnalytic:
    def test_identity_is_user(self):
        system = DirectSearch()
        observations = system.protect("alice", "flu symptoms")
        assert len(observations) == 1
        assert observations[0].identity == "alice"
        assert not observations[0].is_fake

    def test_results_are_engine_results(self, small_split):
        engine = SearchEngine(build_corpus(docs_per_topic=10, seed=1))
        system = DirectSearch()
        observations = system.protect("alice", "symptoms cancer")
        returned = system.results_for(engine, "symptoms cancer", observations)
        reference = [h.url for h in engine.search("symptoms cancer")]
        assert returned == reference


class TestTorAnalytic:
    def test_identity_is_exit_not_user(self):
        system = TorSearch(num_exit_nodes=5, seed=1)
        observations = system.protect("alice", "flu symptoms")
        assert observations[0].identity.startswith("tor-exit-")
        assert observations[0].true_user == "alice"

    def test_exits_rotate(self):
        system = TorSearch(num_exit_nodes=20, seed=1)
        exits = {system.protect("alice", "q")[0].identity
                 for _ in range(30)}
        assert len(exits) > 3

    def test_no_fakes(self):
        system = TorSearch(seed=1)
        observations = system.protect("alice", "q")
        assert all(not o.is_fake for o in observations)

    def test_invalid_exit_count(self):
        with pytest.raises(ValueError):
            TorSearch(num_exit_nodes=0)


class TestTorNetwork:
    @pytest.fixture
    def stack(self):
        rng = random.Random(3)
        sim = Simulator()
        net = Network(sim, rng, default_latency=ConstantLatency(0.02))
        engine_node = SearchEngineNode(
            net, SearchEngine(build_corpus(docs_per_topic=10, seed=1)), rng,
            processing=ConstantLatency(0.05))
        relays = build_tor_network(net, rng, engine_node.address,
                                   num_relays=5,
                                   relay_latency=ConstantLatency(0.1))
        client = TorClientNode(net, "client", rng, relays,
                               engine_node.address)
        return sim, engine_node, relays, client

    def test_onion_roundtrip_returns_results(self, stack):
        sim, engine_node, relays, client = stack
        results = []
        client.search("symptoms cancer treatment", results.append)
        sim.run()
        assert results and results[0]["status"] == "ok"
        assert results[0]["hits"]

    def test_engine_sees_exit_identity(self, stack):
        sim, engine_node, relays, client = stack
        client.search("anonymity probe", lambda r: None)
        sim.run()
        entry = engine_node.tap.entries[0]
        assert entry.identity.startswith("tor-relay-")
        assert entry.identity != client.address

    def test_circuit_latency_dominates(self, stack):
        sim, engine_node, relays, client = stack
        results = []
        client.search("latency probe", results.append)
        sim.run()
        # 3 relay hops each way at 0.1 s + engine processing.
        assert results[0]["latency"] > 0.5

    def test_middle_relays_see_only_onions(self, stack):
        # The relay handler decrypts one layer; a relay given a foreign
        # onion (not encrypted to it) must drop it silently.
        sim, engine_node, relays, client = stack
        foreign = relays[0]
        results = []
        # Craft an onion for relay[1] but deliver it to relay[0].
        client.circuit_length = 1
        client.relays = [relays[1]]
        client.search("misrouted", results.append)
        sim.run()
        assert results  # sanity: correct routing works

    def test_invalid_circuit_params(self, stack):
        sim, engine_node, relays, client = stack
        with pytest.raises(ValueError):
            TorClientNode(client.network, "c2", random.Random(0), relays,
                          "engine", circuit_length=0)
        with pytest.raises(ValueError):
            TorClientNode(client.network, "c3", random.Random(0), relays[:1],
                          "engine", circuit_length=3)
