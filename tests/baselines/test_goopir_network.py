"""Tests for the GooPIR network client."""

import random

import pytest

from repro.baselines.goopir import GooPirClientNode
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode


@pytest.fixture
def stack():
    rng = random.Random(16)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    engine_node = SearchEngineNode(
        net, SearchEngine(build_corpus(docs_per_topic=10, seed=1)), rng,
        processing=ConstantLatency(0.02))
    client = GooPirClientNode(net, "client", rng, engine_node.address, k=3)
    return sim, engine_node, client


class TestGooPirClient:
    def test_roundtrip_with_filtering(self, stack):
        sim, engine_node, client = stack
        results = []
        client.search("symptoms cancer treatment", results.append)
        sim.run()
        assert results and results[0]["status"] == "ok"
        from repro.text.tokenize import tokenize

        terms = set(tokenize("symptoms cancer treatment"))
        for hit in results[0]["hits"]:
            visible = set(hit.get("title", [])) | set(hit.get("snippet", []))
            assert terms & visible

    def test_engine_sees_user_and_or_group(self, stack):
        sim, engine_node, client = stack
        client.search("goopir identity probe", lambda r: None)
        sim.run()
        entry = engine_node.tap.entries[0]
        assert entry.identity == client.address  # no unlinkability
        assert " OR " in entry.text
        assert "goopir identity probe" in entry.text

    def test_single_request_per_query(self, stack):
        sim, engine_node, client = stack
        client.search("one", lambda r: None)
        client.search("two", lambda r: None)
        sim.run()
        assert len(engine_node.tap) == 2  # one OR group each
