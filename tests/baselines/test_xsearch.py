"""Tests for the X-Search baseline (analytic + network)."""

import random

import pytest

from repro.baselines.xsearch import (
    XSearch,
    XSearchClientNode,
    XSearchEnclave,
    XSearchProxyNode,
)
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy


class TestXSearchAnalytic:
    def test_identity_is_proxy(self):
        system = XSearch(k=3, seed=1)
        system.prime(["past one", "past two", "past three", "past four"])
        obs = system.protect("alice", "flu symptoms")[0]
        assert obs.identity == XSearch.PROXY_IDENTITY

    def test_fakes_are_verbatim_past_queries(self):
        system = XSearch(k=2, seed=1)
        past = ["alpha beta", "gamma delta", "epsilon zeta"]
        system.prime(past)
        obs = system.protect("alice", "current query")[0]
        for index, subquery in enumerate(obs.subqueries()):
            if index != obs.real_index:
                assert subquery in past

    def test_query_enters_table_for_future_fakes(self):
        system = XSearch(k=1, seed=1)
        system.prime(["seed query"])
        system.protect("alice", "new query")
        assert "new query" in system.table

    def test_group_size(self):
        system = XSearch(k=3, seed=1)
        system.prime([f"q{i}" for i in range(10)])
        obs = system.protect("alice", "real")[0]
        assert len(obs.subqueries()) == 4


@pytest.fixture
def xsearch_stack():
    rng = random.Random(6)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    engine_node = SearchEngineNode(
        net, SearchEngine(build_corpus(docs_per_topic=10, seed=1)), rng,
        processing=ConstantLatency(0.05))
    ias = IntelAttestationService()
    policy = MeasurementPolicy()
    policy.allow_class(XSearchEnclave)
    proxy = XSearchProxyNode(net, rng, engine_node.address, ias, policy, k=2)
    proxy.prime([f"past query number {i}" for i in range(20)])
    client = XSearchClientNode(net, "client", rng, proxy, ias, policy)
    connected = []
    client.connect(lambda: connected.append(True))
    sim.run(until=10)
    assert connected
    return sim, net, engine_node, proxy, client


class TestXSearchNetwork:
    def test_search_roundtrip(self, xsearch_stack):
        sim, net, engine_node, proxy, client = xsearch_stack
        results = []
        client.search("symptoms cancer", results.append)
        sim.run()
        assert results and results[0]["status"] == "ok"

    def test_engine_sees_proxy_identity_and_or_group(self, xsearch_stack):
        sim, net, engine_node, proxy, client = xsearch_stack
        client.search("identity probe", lambda r: None)
        sim.run()
        entry = engine_node.tap.entries[0]
        assert entry.identity == proxy.address
        assert " OR " in entry.text
        assert "identity probe" in entry.text

    def test_proxy_filters_response(self, xsearch_stack):
        sim, net, engine_node, proxy, client = xsearch_stack
        results = []
        client.search("symptoms cancer treatment", results.append)
        sim.run()
        # Every returned title/snippet relates to the original query.
        from repro.text.tokenize import tokenize

        terms = set(tokenize("symptoms cancer treatment"))
        for hit in results[0]["hits"]:
            visible = set(hit.get("title", [])) | set(hit.get("snippet", []))
            assert terms & visible

    def test_proxy_counts_queries(self, xsearch_stack):
        sim, net, engine_node, proxy, client = xsearch_stack
        client.search("one", lambda r: None)
        client.search("two", lambda r: None)
        sim.run()
        assert proxy.queries_proxied == 2

    def test_garbage_request_dropped(self, xsearch_stack):
        sim, net, engine_node, proxy, client = xsearch_stack
        outcomes = []
        client.request(proxy.address, b"not-a-sealed-record",
                       outcomes.append, timeout=2.0,
                       on_timeout=lambda: outcomes.append("timeout"),
                       kind="xsearch")
        sim.run()
        assert outcomes == ["timeout"]
