"""§II-A3: 'the logical OR operator ... is not natively supported by
all search engines and is impractical as the search engine returns
results only related to the exact query, with a direct impact on the
accuracy of the corresponding private Web search mechanism.'

These tests quantify that remark: the same GooPIR pipeline against an
engine with and without native OR support.
"""

import pytest

from repro.baselines.goopir import GooPir
from repro.metrics.accuracy import correctness_completeness, mean_accuracy
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(docs_per_topic=20, seed=5)


def goopir_accuracy(engine, queries, k=3):
    system = GooPir(k=k, seed=5)
    scores = []
    for query in queries:
        reference = [hit.url for hit in engine.search(query)]
        observations = system.protect("user", query)
        returned = system.results_for(engine, query, observations)
        scores.append(correctness_completeness(reference, returned))
    return mean_accuracy(scores)


QUERIES = ["symptoms cancer treatment", "football league scores",
           "mortgage refinance rates", "hotel booking paris",
           "laptop processor memory"]


class TestOrSupportImpact:
    def test_native_or_beats_no_or(self, corpus):
        native = goopir_accuracy(
            SearchEngine(corpus, or_support="native"), QUERIES)
        without = goopir_accuracy(
            SearchEngine(corpus, or_support="none"), QUERIES)
        assert native.completeness > without.completeness

    def test_no_or_supports_collapses_relevance(self, corpus):
        """Without native OR, the whole group is one bag of words: the
        real query's terms drown among the fakes' and the page barely
        overlaps the true answer."""
        without = goopir_accuracy(
            SearchEngine(corpus, or_support="none"), QUERIES, k=7)
        assert without.completeness < 0.4

    def test_cyclosa_is_immune_to_engine_or_semantics(self, corpus):
        """CYCLOSA never uses OR, so the engine's OR behaviour is
        irrelevant to it — the §II-A3 problem simply doesn't apply."""
        from repro.baselines.cyclosa_analytic import CyclosaAnalytic
        from repro.core.sensitivity import SemanticAssessor

        for or_support in ("native", "none"):
            engine = SearchEngine(corpus, or_support=or_support)
            system = CyclosaAnalytic(SemanticAssessor(), kmax=3,
                                     adaptive=False, seed=5)
            scores = []
            for query in QUERIES:
                reference = [hit.url for hit in engine.search(query)]
                observations = system.protect("user", query)
                returned = system.results_for(engine, query, observations)
                scores.append(correctness_completeness(reference, returned))
            assert mean_accuracy(scores).perfect
