"""Tests for the shared baseline helpers in baselines.base."""

import random

import pytest

from repro.baselines.base import (
    EngineObservation,
    filter_by_query_terms,
    hits_as_dicts,
)
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import OR_SEPARATOR, SearchEngine


class TestEngineObservation:
    def test_subqueries_plain(self):
        obs = EngineObservation(identity="u", text="plain query",
                                true_user="u")
        assert obs.subqueries() == ["plain query"]

    def test_subqueries_group(self):
        text = OR_SEPARATOR.join(["one", "two", "three"])
        obs = EngineObservation(identity="u", text=text, true_user="u",
                                real_index=1)
        assert obs.subqueries() == ["one", "two", "three"]
        assert obs.subqueries()[obs.real_index] == "two"

    def test_frozen(self):
        obs = EngineObservation(identity="u", text="q", true_user="u")
        with pytest.raises(AttributeError):
            obs.text = "changed"


class TestFilterByQueryTerms:
    def test_keeps_title_matches(self):
        hits = [{"url": "a", "title": ["flu", "season"], "snippet": []},
                {"url": "b", "title": ["football"], "snippet": []}]
        assert filter_by_query_terms("flu symptoms", hits) == ["a"]

    def test_keeps_snippet_matches(self):
        hits = [{"url": "a", "title": ["unrelated"],
                 "snippet": ["symptoms"]}]
        assert filter_by_query_terms("flu symptoms", hits) == ["a"]

    def test_preserves_rank_order(self):
        hits = [{"url": f"u{i}", "title": ["flu"], "snippet": []}
                for i in range(5)]
        assert filter_by_query_terms("flu", hits) == [f"u{i}"
                                                      for i in range(5)]

    def test_stopwords_do_not_match(self):
        hits = [{"url": "a", "title": ["the", "and"], "snippet": []}]
        assert filter_by_query_terms("the flu and", hits) == []

    def test_missing_fields_tolerated(self):
        hits = [{"url": "a"}]
        assert filter_by_query_terms("anything", hits) == []


class TestHitsAsDicts:
    def test_shape_matches_engine_node_responses(self):
        engine = SearchEngine(build_corpus(docs_per_topic=5, seed=1))
        hits = hits_as_dicts(engine, "symptoms cancer")
        assert hits
        for hit in hits:
            assert set(hit) == {"doc_id", "url", "score", "title",
                                "snippet"}
            assert isinstance(hit["title"], list)
