"""Tests for the PEAS two-server network version (Fig 2c)."""

import random

import pytest

from repro.baselines.peas import PeasClientNode, PeasIssuerNode, PeasProxyNode
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode


@pytest.fixture
def stack():
    rng = random.Random(12)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    engine_node = SearchEngineNode(
        net, SearchEngine(build_corpus(docs_per_topic=10, seed=1)), rng,
        processing=ConstantLatency(0.05))
    issuer = PeasIssuerNode(net, rng, engine_node.address, k=2)
    issuer.prime(["symptoms cancer", "football scores",
                  "hotel booking paris", "mortgage refinance rates"])
    proxy = PeasProxyNode(net, issuer.address)
    client = PeasClientNode(net, "client", rng, proxy, issuer)
    return sim, net, engine_node, issuer, proxy, client


class TestPeasNetwork:
    def test_search_roundtrip(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        results = []
        client.search("symptoms cancer treatment", results.append)
        sim.run()
        assert results and results[0]["status"] == "ok"
        assert results[0]["hits"]

    def test_engine_sees_issuer_identity_and_group(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        client.search("identity probe query", lambda r: None)
        sim.run()
        entry = engine_node.tap.entries[0]
        assert entry.identity == issuer.address
        assert " OR " in entry.text
        assert "identity probe query" in entry.text

    def test_proxy_sees_only_ciphertext(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        seen = []
        original_send = net.send

        def tap(src, dst, kind, payload, size_bytes=None):
            if dst == proxy.address and kind.startswith("peas"):
                seen.append(payload)
            return original_send(src, dst, kind, payload, size_bytes)

        net.send = tap
        client.search("proxy blindness probe", lambda r: None)
        sim.run()
        assert seen
        for payload in seen:
            assert isinstance(payload, (bytes, bytearray))
            assert b"blindness probe" not in bytes(payload)

    def test_issuer_never_learns_client_identity(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        # The issuer only ever receives messages whose transport source
        # is the proxy — the non-collusion split.
        sources = []
        original_send = net.send

        def tap(src, dst, kind, payload, size_bytes=None):
            if dst == issuer.address and kind == "peas.req":
                sources.append(src)
            return original_send(src, dst, kind, payload, size_bytes)

        net.send = tap
        client.search("issuer blindness probe", lambda r: None)
        sim.run()
        assert sources and all(src == proxy.address for src in sources)

    def test_response_encrypted_end_to_end(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        # The proxy relays the response but cannot read it: it is sealed
        # under the per-request key the client chose.
        relayed = []
        original_send = net.send

        def tap(src, dst, kind, payload, size_bytes=None):
            if src == proxy.address and dst == client.address:
                relayed.append(payload)
            return original_send(src, dst, kind, payload, size_bytes)

        net.send = tap
        results = []
        client.search("response privacy probe", results.append)
        sim.run()
        assert results and results[0]["hits"] is not None
        inner = [p["payload"] for p in relayed
                 if isinstance(p, dict) and "payload" in p]
        assert inner
        assert all(isinstance(payload, (bytes, bytearray))
                   for payload in inner)

    def test_filtering_applied_client_side(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        results = []
        client.search("symptoms cancer", results.append)
        sim.run()
        from repro.text.tokenize import tokenize

        terms = set(tokenize("symptoms cancer"))
        for hit in results[0]["hits"]:
            visible = set(hit.get("title", [])) | set(hit.get("snippet", []))
            assert terms & visible

    def test_garbage_to_issuer_dropped(self, stack):
        sim, net, engine_node, issuer, proxy, client = stack
        outcomes = []
        client.node.request(proxy.address, b"garbage", outcomes.append,
                            timeout=3.0,
                            on_timeout=lambda: outcomes.append("timeout"),
                            kind="peas")
        sim.run()
        assert outcomes == ["timeout"]
