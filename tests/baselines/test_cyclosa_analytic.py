"""Tests for the analytic CYCLOSA pipeline."""

import pytest

from repro.baselines.cyclosa_analytic import CyclosaAnalytic
from repro.core.sensitivity import SemanticAssessor


@pytest.fixture
def semantic():
    return SemanticAssessor(wordnet_terms={"cancer", "therapy"},
                            mode="wordnet")


class TestProtection:
    def test_individual_observations_distinct_relays(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=3, adaptive=False, seed=1)
        observations = system.protect("alice", "flu symptoms")
        identities = [o.identity for o in observations]
        assert len(identities) == len(set(identities))
        assert len(observations) == 4

    def test_exactly_one_real(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=5, adaptive=False, seed=1)
        observations = system.protect("alice", "flu symptoms")
        reals = [o for o in observations if not o.is_fake]
        assert len(reals) == 1 and reals[0].text == "flu symptoms"

    def test_adaptive_sensitive_query_gets_kmax(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=4, adaptive=True, seed=1)
        observations = system.protect("alice", "cancer therapy")
        assert len(observations) == 5

    def test_adaptive_fresh_neutral_query_gets_zero(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=4, adaptive=True, seed=1)
        observations = system.protect("alice", "football scores")
        assert len(observations) == 1

    def test_adaptive_linkable_query_grows_k(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=4, adaptive=True, seed=1)
        system.preload_history("alice", ["marathon training plan"] * 4)
        observations = system.protect("alice", "marathon training plan")
        assert len(observations) >= 3

    def test_k_override(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=7, adaptive=True, seed=1)
        observations = system.protect("alice", "cancer", k_override=2)
        assert len(observations) == 3

    def test_fakes_come_from_table(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=3, adaptive=False, seed=1)
        table_snapshot = set(system.table.entries())
        observations = system.protect("alice", "current")
        for obs in observations:
            if obs.is_fake:
                assert obs.text in table_snapshot

    def test_carried_queries_feed_table(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=1, adaptive=False, seed=1)
        system.protect("alice", "grows the table")
        assert "grows the table" in system.table

    def test_k_history_tracks(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=3, adaptive=False, seed=1)
        system.protect("a", "one")
        system.protect("a", "two")
        assert len(system.k_history) == 2

    def test_group_ids_distinct(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=2, adaptive=False, seed=1)
        first = {o.group_id for o in system.protect("a", "one")}
        second = {o.group_id for o in system.protect("a", "two")}
        assert first.isdisjoint(second)

    def test_invalid_kmax(self, semantic):
        with pytest.raises(ValueError):
            CyclosaAnalytic(semantic, kmax=-1)

    def test_table_i_properties(self, semantic):
        system = CyclosaAnalytic(semantic, kmax=2, seed=1)
        assert all(system.properties.values())  # the full Table I row
