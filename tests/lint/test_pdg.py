"""The whole-program PDG pass: graph edge cases, determinism, output.

Each test builds a tiny source tree under ``tmp_path`` (mirroring the
real ``repro.core`` layout so package-sensitive rules behave normally)
and pins how the interprocedural pass handles a specific construct —
decorators, lambdas, comprehension scopes, ``*args``/``**kwargs``
forwarding, re-exports, declassifiers, pragmas — plus the ``--jobs``
byte-identity contract and the JSON witness/fingerprint format.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import findings_to_json, format_text, run_lint

pytestmark = pytest.mark.lint

FIXTURE_ROOT = Path(__file__).resolve().parent / "fixtures" / "src"


def lint_tree(tmp_path, files, jobs=1):
    root = tmp_path / "src"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return run_lint(root=root, jobs=jobs)


def interproc(findings):
    return [f for f in findings
            if f.rule in ("taint-interprocedural", "taint-field-flow")]


# -- cross-module resolution ----------------------------------------------

def test_cross_module_flow_carries_a_cross_file_witness(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/helper.py":
            "def leak(message):\n    print(message)\n",
        "repro/core/main.py":
            "from repro.core.helper import leak\n\n\n"
            "def handle(query):\n    leak(query)\n",
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]
    finding = findings[0]
    assert finding.path == "repro/core/helper.py"  # anchored at sink
    files = [file for file, _line, _symbol in finding.witness]
    assert files == ["repro/core/main.py", "repro/core/main.py",
                     "repro/core/helper.py"]


def test_reexported_name_resolves_through_the_package_init(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/helper.py":
            "def leak(message):\n    print(message)\n",
        "repro/core/__init__.py":
            "from repro.core.helper import leak\n",
        "repro/core/main.py":
            "from repro.core import leak\n\n\n"
            "def handle(query):\n    leak(query)\n",
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]
    assert "handle -> leak" in findings[0].message


# -- graph-construction edge cases ----------------------------------------

def test_decorated_callee_is_still_linked(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/deco.py": """\
        def trace(func):
            return func


        @trace
        def emit(message):
            print(message)


        def handle(query):
            emit(query)
        """,
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]


def test_assigned_lambda_is_a_linkable_function(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/lam.py":
            "emit = lambda message: print(message)\n\n\n"
            "def handle(query):\n    emit(query)\n",
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]
    assert "emit" in findings[0].message


def test_comprehension_result_carries_taint(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/comp.py": """\
        def emit(items):
            print(items)


        def handle(query):
            emit([w.upper() for w in query.split()])
        """,
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]


def test_comprehension_target_does_not_escape_its_scope(tmp_path):
    # the generator variable shadows the outer binding only inside
    # the comprehension; the outer (clean) binding is what escapes
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/comp2.py": """\
        def emit(message):
            print(message)


        def handle(query):
            w = "safe"
            sizes = [w for w in query.split()]
            del sizes
            emit(w)
        """,
    }))
    assert findings == []


def test_star_args_forwarding_over_approximates(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/star.py": """\
        def emit(message):
            print(message)


        def relay(*args, **kwargs):
            emit(*args, **kwargs)


        def handle(query):
            relay(query)
        """,
    }))
    assert [f.rule for f in findings] == ["taint-interprocedural"]
    assert "handle -> relay -> emit" in findings[0].message


def test_untyped_receiver_is_a_pinned_blind_spot(tmp_path):
    # the pass does no receiver type inference: method calls on names
    # other than ``self`` stay sanitizer boundaries (a documented
    # under-approximation, docs/static-analysis.md#pdg)
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/recv.py": """\
        class Box:
            def put(self, query):
                self._value = query

            def get(self):
                return self._value


        def handle(box, query):
            box.put(query)
            print(box.get())
        """,
    }))
    assert findings == []


# -- declassifiers and suppression ----------------------------------------

def test_query_hash_bucket_declassifies(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/hash.py": """\
        from repro.obs import query_hash_bucket


        def emit(message):
            print(message)


        def handle(query):
            emit(query_hash_bucket(query))
        """,
    }))
    assert findings == []


def test_trusted_enclave_module_declassifies(tmp_path):
    # calls into the trusted closure are sanctioned boundaries: the
    # enclave seals, so taint does not flow through its return
    findings = interproc(lint_tree(tmp_path, {
        "repro/sgx/sealer.py":
            "def seal(query):\n    return bytes(query, 'utf-8')\n",
        "repro/core/main.py": """\
        from repro.sgx.sealer import seal


        def emit(message):
            print(message)


        def handle(query):
            emit(seal(query))
        """,
    }))
    assert findings == []


def test_pragma_on_the_sink_line_suppresses(tmp_path):
    findings = interproc(lint_tree(tmp_path, {
        "repro/core/prag.py": """\
        def emit(message):
            print(message)  # lint: allow(taint-interprocedural)


        def handle(query):
            emit(query)
        """,
    }))
    assert findings == []


# -- determinism across the pool ------------------------------------------

def test_findings_are_byte_identical_across_jobs(tmp_path):
    files = {
        "repro/core/helper.py":
            "def leak(message):\n    print(message)\n",
        "repro/core/main.py":
            "from repro.core.helper import leak\n\n\n"
            "def handle(query):\n    leak(query)\n",
        "repro/core/field.py": """\
        class Holder:
            def __init__(self, query):
                self._q = query

            def dump(self):
                print(self._q)
        """,
    }
    reports = [format_text(lint_tree(tmp_path / str(jobs), files,
                                     jobs=jobs))
               for jobs in (1, 2, 4)]
    assert reports[0] == reports[1] == reports[2]
    assert "[taint-interprocedural]" in reports[0]
    assert "[taint-field-flow]" in reports[0]


def test_cli_jobs_output_is_byte_identical(capsys):
    outputs = []
    for jobs in ("1", "2", "4"):
        cli_main(["lint", "--root", str(FIXTURE_ROOT), "--jobs", jobs])
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == outputs[2]


# -- the JSON contract -----------------------------------------------------

def test_json_carries_witness_and_fingerprint(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/helper.py":
            "def leak(message):\n    print(message)\n",
        "repro/core/main.py":
            "from repro.core.helper import leak\n\n\n"
            "def handle(query):\n    leak(query)\n",
    })
    payload = json.loads(findings_to_json(findings))
    (entry,) = [e for e in payload
                if e["rule"] == "taint-interprocedural"]
    assert set(entry["witness"][0]) == {"file", "line", "symbol"}
    symbols = [hop["symbol"] for hop in entry["witness"]]
    assert symbols == ["parameter 'query' of handle", "leak(message)",
                       "print()"]
    assert len(entry["fingerprint"]) == 16
    int(entry["fingerprint"], 16)  # hex digest


def test_fingerprint_survives_unrelated_line_shifts(tmp_path):
    helper = "def leak(message):\n    print(message)\n"
    main = ("from repro.core.helper import leak\n\n\n"
            "def handle(query):\n    leak(query)\n")
    shifted = "# a comment\n# another\n\n" + main

    def fingerprint(base, main_src):
        findings = lint_tree(base, {"repro/core/helper.py": helper,
                                    "repro/core/main.py": main_src})
        (finding,) = interproc(findings)
        return finding.stable_id

    before = fingerprint(tmp_path / "a", main)
    after = fingerprint(tmp_path / "b", shifted)
    assert before == after
