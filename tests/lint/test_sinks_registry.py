"""The static and runtime sink lists must be the same objects.

If :mod:`repro.obs.audit` (runtime) and :mod:`repro.lint.taint`
(static) each kept their own list of adversary-visible sinks, adding a
telemetry surface could silently widen one and not the other. These
tests pin both consumers to :mod:`repro.obs.sinks`.
"""

import pytest

from repro.lint import RULES
from repro.net.trace import MessageTrace
from repro.obs import audit, sinks

pytestmark = pytest.mark.lint


def test_audit_uses_the_registry_objects():
    # identity, not equality: audit must re-export, not copy.
    assert audit.FORBIDDEN_ATTRIBUTE_KEYS is sinks.FORBIDDEN_ATTRIBUTE_KEYS
    assert audit.PATH_SCOPED_SPANS is sinks.PATH_SCOPED_SPANS


def test_runtime_wire_tap_is_a_static_sink():
    assert MessageTrace.TAP_METHOD == sinks.RUNTIME_WIRE_TAP
    assert MessageTrace.TAP_METHOD in sinks.WIRE_EGRESS_CALLS


def test_static_taint_pass_reads_the_registry():
    from repro.lint import taint

    assert taint.sinks is sinks


def test_registry_contents_are_frozen():
    for name in ("FORBIDDEN_ATTRIBUTE_KEYS", "PATH_SCOPED_SPANS",
                 "WIRE_EGRESS_CALLS", "LOG_METHOD_CALLS",
                 "LOG_RECEIVER_NAMES", "SPAN_ATTRIBUTE_CALLS",
                 "SPAN_FACTORY_CALLS", "METRIC_FACTORY_CALLS"):
        assert isinstance(getattr(sinks, name), frozenset), name


def test_facade_exports_the_registry():
    import repro.obs as obs

    assert obs.sinks is sinks
    assert obs.FORBIDDEN_ATTRIBUTE_KEYS is sinks.FORBIDDEN_ATTRIBUTE_KEYS


def test_rule_catalogue_covers_the_taint_sinks():
    # every sink family has a rule a finding can carry
    for rule in ("taint-wire", "taint-log", "taint-telemetry",
                 "span-forbidden-key"):
        assert rule in RULES
