"""The ``repro lint`` subcommand, the CI gate, and the self-test:
the real ``src/`` tree must be clean against the reviewed baseline."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import default_root, load_baseline, run_lint

from benchmarks.check_lint import main as gate_main

pytestmark = pytest.mark.lint

FIXTURE_ROOT = Path(__file__).resolve().parent / "fixtures" / "src"
REPO_ROOT = Path(__file__).resolve().parent.parent.parent


# -- the self-test: our own tree obeys our own rules -----------------------

def test_src_tree_is_clean_against_the_baseline():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    fresh, _grandfathered = baseline.apply(run_lint(root=default_root()))
    assert fresh == [], "non-baselined lint findings in src/:\n" + \
        "\n".join(f.format() for f in fresh)


def test_baseline_has_no_stale_entries():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    assert baseline.stale_entries(run_lint(root=default_root())) == set()


def test_every_baseline_entry_is_justified():
    lines = (REPO_ROOT / "lint-baseline.txt").read_text().splitlines()
    previous_comment = False
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("#"):
            previous_comment = True
            assert "JUSTIFY: <why" not in stripped, \
                "placeholder justification left in the baseline"
        elif stripped:
            assert previous_comment, \
                f"baseline entry without a justification comment: {line!r}"
        else:
            previous_comment = False


# -- the CLI ---------------------------------------------------------------

def test_cli_lint_fails_on_the_fixture_tree(capsys):
    exit_code = cli_main(["lint", "--root", str(FIXTURE_ROOT)])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "[taint-wire]" in out
    assert "hint:" in out


def test_cli_lint_json_output(capsys):
    exit_code = cli_main(["lint", "--root", str(FIXTURE_ROOT),
                          "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert {entry["rule"] for entry in payload} >= {
        "taint-wire", "det-wall-clock", "layer-import-dag"}


def test_cli_lint_single_path(capsys):
    target = FIXTURE_ROOT / "repro" / "core" / "bad_clock.py"
    exit_code = cli_main(["lint", "--root", str(FIXTURE_ROOT),
                          str(target)])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "[det-wall-clock]" in out
    assert "[taint-wire]" not in out


def test_cli_lint_baseline_suppresses(tmp_path, capsys):
    baseline = tmp_path / "base.txt"
    cli_main(["lint", "--root", str(FIXTURE_ROOT),
              "--write-baseline", "--baseline", str(baseline)])
    capsys.readouterr()
    exit_code = cli_main(["lint", "--root", str(FIXTURE_ROOT),
                          "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "clean" in out
    assert "suppressed" in out


def test_cli_lint_missing_baseline_errors(tmp_path, capsys):
    exit_code = cli_main(["lint", "--root", str(FIXTURE_ROOT),
                          "--baseline", str(tmp_path / "nope.txt")])
    capsys.readouterr()
    assert exit_code == 2


# -- the CI gate -----------------------------------------------------------

def test_gate_passes_on_src_with_the_repo_baseline(capsys):
    assert gate_main([]) == 0
    assert "clean" in capsys.readouterr().out


def test_gate_fails_on_a_seeded_violation(tmp_path, capsys):
    bad_tree = tmp_path / "src" / "repro" / "core"
    bad_tree.mkdir(parents=True)
    bad_tree.joinpath("leak.py").write_text(
        "def route(network, dst, query):\n"
        "    network.send(dst, query)\n")
    exit_code = gate_main(["--root", str(tmp_path / "src"),
                           "--no-baseline"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "[taint-wire]" in captured.out
    assert "static analysis failed" in captured.err


def test_gate_baseline_silences_the_seeded_violation(tmp_path, capsys):
    bad_tree = tmp_path / "src" / "repro" / "core"
    bad_tree.mkdir(parents=True)
    bad_tree.joinpath("leak.py").write_text(
        "def route(network, dst, query):\n"
        "    network.send(dst, query)\n")
    baseline = tmp_path / "base.txt"
    baseline.write_text(
        "# JUSTIFY: seeded fixture for the gate test\n"
        "taint-wire\trepro/core/leak.py\t"
        "query text flows into wire egress .send()\n")
    exit_code = gate_main(["--root", str(tmp_path / "src"),
                           "--baseline", str(baseline)])
    capsys.readouterr()
    assert exit_code == 0


def test_pragma_silences_the_seeded_violation(tmp_path):
    bad_tree = tmp_path / "src" / "repro" / "core"
    bad_tree.mkdir(parents=True)
    bad_tree.joinpath("leak.py").write_text(
        "def route(network, dst, query):\n"
        "    network.send(dst, query)"
        "  # lint: allow(taint-wire) -- test fixture\n")
    assert run_lint(root=tmp_path / "src") == []
