"""Every known-bad fixture triggers exactly its expected rule.

The fixture tree under ``tests/lint/fixtures/src`` mirrors the real
layout (``repro/core/...``), so package-sensitive rules (layering,
taint exemptions) behave exactly as they do on the real tree.
"""

from pathlib import Path

import pytest

from repro.lint import collect_modules, run_lint

pytestmark = pytest.mark.lint

FIXTURE_ROOT = Path(__file__).resolve().parent / "fixtures" / "src"

#: fixture file -> the one rule it must trigger.
EXPECTED = {
    "bad_wire.py": "taint-wire",
    "bad_print.py": "taint-print",
    "bad_log.py": "taint-log",
    "bad_exception.py": "taint-exception",
    "bad_span_key.py": "span-forbidden-key",
    "bad_span_taint.py": "taint-telemetry",
    "bad_trusted.py": "enclave-trusted-outside-ecall",
    "bad_internal_import.py": "enclave-internal-import",
    "bad_ocall.py": "enclave-ocall-bypass",
    "bad_clock.py": "det-wall-clock",
    "bad_entropy.py": "det-system-entropy",
    "bad_random.py": "det-global-random",
    "bad_unseeded.py": "det-unseeded-rng",
    "bad_layering.py": "layer-import-dag",
    "bad_obs_import.py": "layer-obs-facade",
    "bad_parse.py": "parse-error",
    "bad_interproc.py": "taint-interprocedural",
    "bad_field_flow.py": "taint-field-flow",
}


def _lint_one(name):
    path = FIXTURE_ROOT / "repro" / "core" / name
    assert path.exists(), f"fixture missing: {path}"
    return run_lint(root=FIXTURE_ROOT, paths=[path])


@pytest.mark.parametrize("name,rule", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(name, rule):
    findings = _lint_one(name)
    assert len(findings) == 1, \
        f"{name}: expected exactly one finding, got {findings}"
    assert findings[0].rule == rule
    assert findings[0].path == f"repro/core/{name}"


def test_clean_fixture_is_clean():
    assert _lint_one("clean.py") == []


def test_whole_fixture_tree():
    findings = run_lint(root=FIXTURE_ROOT)
    by_path = {f.path: f.rule for f in findings}
    assert by_path == {
        f"repro/core/{name}": rule for name, rule in EXPECTED.items()}


def test_finding_lines_point_at_the_offence():
    findings = _lint_one("bad_print.py")
    # the print() sits on line 5 of the fixture
    assert findings[0].line == 5


def test_trusted_closure_spares_the_gated_method():
    findings = _lint_one("bad_trusted.py")
    assert "DemoEnclave.peek" in findings[0].message
    assert "seal" not in findings[0].message


# -- the PDG fixtures: blind spots of the per-function checker -------

def _intra_only(name):
    """Run just the per-function taint checker on one fixture."""
    from repro.lint.taint import check_taint

    path = FIXTURE_ROOT / "repro" / "core" / name
    return run_lint(root=FIXTURE_ROOT, paths=[path],
                    checkers=[check_taint])


@pytest.mark.parametrize("name", ["bad_interproc.py",
                                  "bad_field_flow.py"])
def test_per_function_checker_alone_misses_the_pdg_fixtures(name):
    # this is the gap the whole-program pass exists to close: the
    # intra checker sees no source-and-sink inside any one function
    assert _intra_only(name) == []


def test_interproc_witness_names_every_hop():
    finding = _lint_one("bad_interproc.py")[0]
    assert finding.rule == "taint-interprocedural"
    assert finding.line == 11          # anchored at the print() sink
    assert "handle -> forward" in finding.message
    hops = [(line, symbol) for _file, line, symbol in finding.witness]
    assert hops == [
        (14, "parameter 'query' of handle"),   # the source
        (15, "forward(message)"),              # the call boundary
        (11, "print()"),                       # the sink
    ]
    assert all(file == "repro/core/bad_interproc.py"
               for file, _line, _symbol in finding.witness)


def test_field_flow_witness_names_the_field_write():
    finding = _lint_one("bad_field_flow.py")[0]
    assert finding.rule == "taint-field-flow"
    assert "through field Holder._q" in finding.message
    symbols = [symbol for _file, _line, symbol in finding.witness]
    assert symbols == ["parameter 'query' of Holder.__init__",
                       "Holder._q =", "print()"]
