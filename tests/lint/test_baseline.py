"""Baseline files, pragmas, fingerprints and the findings model."""

import json

import pytest

from repro.lint import (RULES, Finding, findings_to_json, format_baseline,
                        format_text, scan_pragmas)
from repro.lint.baseline import (Baseline, BaselineError, parse_baseline,
                                 pragma_allows)

pytestmark = pytest.mark.lint


def _finding(rule="taint-print", path="repro/core/x.py", line=3,
             message="query text flows into print()"):
    return Finding(path=path, line=line, rule=rule, message=message)


# -- pragmas ---------------------------------------------------------------

def test_scan_pragmas_single_rule():
    lines = ["x = 1", "print(q)  # lint: allow(taint-print) -- own tty"]
    assert scan_pragmas(lines) == {2: {"taint-print"}}


def test_scan_pragmas_multiple_rules_and_star():
    lines = ["a  # lint: allow(taint-print, taint-log)",
             "b  # lint: allow(*)"]
    pragmas = scan_pragmas(lines)
    assert pragmas[1] == {"taint-print", "taint-log"}
    assert pragma_allows(pragmas, _finding(line=1))
    assert pragma_allows(pragmas, _finding(rule="det-wall-clock", line=2))
    assert not pragma_allows(pragmas, _finding(rule="det-wall-clock",
                                               line=1))


def test_pragma_only_covers_its_own_line():
    pragmas = scan_pragmas(["print(q)  # lint: allow(taint-print)"])
    assert not pragma_allows(pragmas, _finding(line=2))


# -- baseline file ---------------------------------------------------------

def test_parse_baseline_skips_comments_and_blanks():
    text = ("# a justification\n"
            "\n"
            "taint-print\trepro/core/x.py\tquery text flows into print()\n")
    baseline = parse_baseline(text)
    assert len(baseline) == 1
    assert baseline.matches(_finding())


def test_parse_baseline_rejects_malformed_lines():
    with pytest.raises(BaselineError):
        parse_baseline("taint-print only-two-fields\n")


def test_baseline_apply_splits_fresh_from_grandfathered():
    baseline = Baseline({_finding().fingerprint})
    fresh_finding = _finding(rule="det-wall-clock",
                             message="calls time.time() in simulation code")
    fresh, grandfathered = baseline.apply([_finding(), fresh_finding])
    assert fresh == [fresh_finding]
    assert grandfathered == [_finding()]


def test_baseline_matching_ignores_line_numbers():
    baseline = Baseline({_finding(line=3).fingerprint})
    assert baseline.matches(_finding(line=99))


def test_stale_entries_report_fixed_code():
    gone = ("taint-log", "repro/core/gone.py", "old message")
    baseline = Baseline({_finding().fingerprint, gone})
    assert baseline.stale_entries([_finding()]) == {gone}


def test_format_baseline_roundtrips_with_justify_placeholders():
    body = format_baseline([_finding()])
    assert "# JUSTIFY:" in body
    assert parse_baseline(body).matches(_finding())


# -- findings model --------------------------------------------------------

def test_every_rule_has_description_and_hint():
    for rule, (description, hint) in RULES.items():
        assert description and hint, rule


def test_format_text_clean_and_nonempty():
    assert "clean" in format_text([])
    rendered = format_text([_finding()])
    assert "repro/core/x.py:3" in rendered
    assert "[taint-print]" in rendered
    assert "hint:" in rendered


def test_findings_to_json_is_parseable_and_hinted():
    payload = json.loads(findings_to_json([_finding()]))
    assert payload[0]["rule"] == "taint-print"
    assert payload[0]["hint"] == RULES["taint-print"][1]
