"""Fixture: query text printed. Expect taint-print."""


def debug(query):
    print("serving", query)
