"""Fixture: enclave-internal symbol imported by untrusted code.
Expect enclave-internal-import."""

from repro.sgx.enclave import _measure  # noqa: F401
