"""Fixture: query text logged. Expect taint-log."""

import logging

logger = logging.getLogger(__name__)


def note(query):
    logger.info("serving %s", query)
