"""Known-bad: query text crosses a function boundary before leaking.

``handle`` receives the query under a source parameter name and hands
it to ``forward`` under a neutral name (``message``); the per-function
checker sees no source inside ``forward`` and no sink inside
``handle``, so only the whole-program PDG pass catches the flow.
"""


def forward(message):
    print(message)


def handle(query):
    forward(query)
