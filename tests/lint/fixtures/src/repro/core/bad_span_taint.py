"""Fixture: query text as a span-attribute value. Expect taint-telemetry."""


def annotate(span, query):
    span.set_attribute("bucket", query)
