"""Fixture: the sanctioned patterns — the analyzer must stay silent.

Seeded randomness, salted hash buckets instead of plaintext, and
facade-only imports: what a compliant protected-package module does.
"""

import random

from repro.obs import query_hash_bucket


def protect(network, dst, query):
    bucket = query_hash_bucket(query)
    network.send(dst, {"kind": "search.req", "bucket": bucket})
    return bucket


def shuffle(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)
    return items
