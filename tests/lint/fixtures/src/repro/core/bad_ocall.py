"""Fixture: ocall table reached directly. Expect enclave-ocall-bypass."""


def bypass(enclave, payload):
    return enclave.ocall_handler("net.send", payload)
