"""Known-bad: query text parks on an object field, then leaks.

The write and the read live in different methods, so neither method
alone shows a source→sink flow; the field node in the whole-program
PDG connects them.
"""


class Holder:
    def __init__(self, query):
        self._q = query

    def dump(self):
        print(self._q)
