"""Fixture: sealed state outside the ecall gate.
Expect enclave-trusted-outside-ecall (on DemoEnclave.peek only —
seal is gated, so the trusted closure covers it)."""

from repro.sgx.enclave import ecall


class DemoEnclave:

    @ecall
    def seal(self, record):
        self.trusted["record"] = record

    def peek(self):
        return self.trusted["record"]
