"""Fixture: query text in a raised exception. Expect taint-exception."""


def reject(query):
    raise ValueError(f"unsupported query: {query}")
