"""Fixture: Random() without a seed. Expect det-unseeded-rng."""

import random


def fresh_rng():
    return random.Random()
