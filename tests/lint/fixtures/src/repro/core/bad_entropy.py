"""Fixture: system entropy outside repro.crypto. Expect det-system-entropy."""

import os


def token():
    return os.urandom(16)
