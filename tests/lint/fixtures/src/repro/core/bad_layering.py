"""Fixture: protected package importing a top layer. Expect layer-import-dag."""

from repro.cli import main  # noqa: F401
