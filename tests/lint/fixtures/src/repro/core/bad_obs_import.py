"""Fixture: reaching past the obs facade. Expect layer-obs-facade."""

from repro.obs.trace import Span  # noqa: F401
