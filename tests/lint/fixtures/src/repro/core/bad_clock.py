"""Fixture: wall clock in simulation code. Expect det-wall-clock."""

import time


def stamp():
    return time.time()
