"""Fixture: forbidden span-attribute key. Expect span-forbidden-key."""


def trace_leg(tracer):
    return tracer.start_span("fanout", attributes={"is_fake": True})
