"""Fixture: module-global random call. Expect det-global-random."""

import random


def pick(items):
    return random.choice(items)
