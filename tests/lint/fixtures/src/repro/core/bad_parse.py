"""Fixture: file that does not parse. Expect parse-error."""


def broken(:
    pass
