"""Fixture: plaintext query reaching wire egress. Expect taint-wire."""


def forward(network, dst, query):
    network.send(dst, {"kind": "search.req", "query": query})
