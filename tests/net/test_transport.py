"""Tests for repro.net.transport."""

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode, NetworkError, RequestContext


class EchoNode(NetNode):
    """RPC server echoing payloads; records datagrams."""

    def __init__(self, network, address, respond=True):
        super().__init__(network, address)
        self.datagrams = []
        self.respond = respond

    def handle_request(self, ctx: RequestContext):
        if self.respond:
            ctx.respond({"echo": ctx.request.payload})

    def handle_datagram(self, message):
        self.datagrams.append(message)


@pytest.fixture
def rng():
    return random.Random(0)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim, rng):
    return Network(sim, rng, default_latency=ConstantLatency(0.01))


class TestRegistration:
    def test_register_and_lookup(self, net):
        node = EchoNode(net, "a")
        assert net.node("a") is node
        assert net.knows("a")

    def test_duplicate_address_rejected(self, net):
        EchoNode(net, "a")
        with pytest.raises(NetworkError):
            EchoNode(net, "a")

    def test_unknown_address_raises(self, net):
        with pytest.raises(NetworkError):
            net.node("ghost")

    def test_unknown_sender_rejected(self, net):
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "kind", {})


class TestDelivery:
    def test_datagram_arrives_after_latency(self, net, sim):
        EchoNode(net, "a")
        b = EchoNode(net, "b")
        net.node("a").send("b", "data", "hello")
        sim.run()
        assert len(b.datagrams) == 1
        assert b.datagrams[0].payload == "hello"
        assert sim.now == pytest.approx(0.01)

    def test_message_to_churned_node_dropped(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        a.send("b", "data", "hello")
        net.unregister("b")
        sim.run()
        assert net.stats.dropped == 1

    def test_per_pair_latency_override(self, net, sim):
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        net.set_link_latency("a", "b", ConstantLatency(0.5))
        a.send("b", "data", "x")
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_node_latency_override(self, net, sim):
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        net.set_node_latency("b", ConstantLatency(0.3))
        a.send("b", "data", "x")
        sim.run()
        assert sim.now == pytest.approx(0.3)

    def test_pair_override_beats_node_override(self, net, sim):
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        net.set_node_latency("b", ConstantLatency(0.3))
        net.set_link_latency("a", "b", ConstantLatency(0.1))
        a.send("b", "data", "x")
        sim.run()
        assert sim.now == pytest.approx(0.1)

    def test_bandwidth_adds_serialisation_delay(self, sim, rng):
        net = Network(sim, rng, default_latency=ConstantLatency(0.0),
                      bandwidth_bytes_per_s=1000.0)
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        a.send("b", "data", b"x" * 500)
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_loss_probability(self, sim, rng):
        net = Network(sim, rng, default_latency=ConstantLatency(0.0),
                      loss_probability=0.5)
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        for _ in range(200):
            a.send("b", "data", "x")
        sim.run()
        assert 40 < len(b.datagrams) < 160
        assert net.stats.dropped == 200 - len(b.datagrams)

    def test_invalid_loss_probability(self, sim, rng):
        with pytest.raises(NetworkError):
            Network(sim, rng, loss_probability=1.0)

    def test_stats_accumulate(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        a.send("b", "data", b"12345")
        assert net.stats.messages == 1
        assert net.stats.bytes == 5


class TestRpc:
    def test_request_reply(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        replies = []
        a.request("b", {"q": 1}, replies.append)
        sim.run()
        assert replies == [{"echo": {"q": 1}}]

    def test_timeout_fires_without_response(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b", respond=False)
        timeouts = []
        a.request("b", "q", lambda r: None, timeout=1.0,
                  on_timeout=lambda: timeouts.append(1))
        sim.run()
        assert timeouts == [1]

    def test_timeout_cancelled_by_reply(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        timeouts = []
        replies = []
        a.request("b", "q", replies.append, timeout=10.0,
                  on_timeout=lambda: timeouts.append(1))
        sim.run()
        assert replies and not timeouts

    def test_duplicate_response_rejected(self, net, sim):
        class DoubleResponder(NetNode):
            def handle_request(self, ctx):
                ctx.respond("one")
                with pytest.raises(NetworkError):
                    ctx.respond("two")

        a = EchoNode(net, "a")
        DoubleResponder(net, "c")
        a.request("c", "q", lambda r: None)
        sim.run()

    def test_deferred_response(self, net, sim):
        class SlowResponder(NetNode):
            def handle_request(self, ctx):
                self.network.simulator.schedule(
                    1.0, lambda: ctx.respond("late"))

        a = EchoNode(net, "a")
        SlowResponder(net, "slow")
        replies = []
        a.request("slow", "q", replies.append)
        sim.run()
        assert replies == ["late"]
        assert sim.now >= 1.0

    def test_concurrent_requests_correlate(self, net, sim):
        class TaggingResponder(NetNode):
            def handle_request(self, ctx):
                ctx.respond(ctx.request.payload * 10)

        a = EchoNode(net, "a")
        TaggingResponder(net, "t")
        replies = []
        for value in (1, 2, 3):
            a.request("t", value, replies.append)
        sim.run()
        assert sorted(replies) == [10, 20, 30]


class TestCrashedHostSemantics:
    def test_departed_sender_messages_dropped_silently(self, net, sim):
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        net.unregister("a")
        # A leftover timer of the dead node fires and tries to send.
        assert net.send("a", "b", "data", "zombie") is None
        assert net.stats.dropped == 1

    def test_never_registered_sender_still_raises(self, net):
        with pytest.raises(NetworkError):
            net.send("never-existed", "b", "data", "x")

    def test_departed_address_can_rejoin(self, net, sim):
        a = EchoNode(net, "a")
        b = EchoNode(net, "b")
        net.unregister("a")
        rejoined = EchoNode(net, "a")  # same address, new incarnation
        rejoined.send("b", "data", "back")
        sim.run()
        assert b.datagrams and b.datagrams[-1].payload == "back"


class TestLostOnWireRequests:
    """A request lost on the wire must leave the same bookkeeping as
    one whose response never comes: a registered pending entry with a
    cancellable timeout handle."""

    def lost_sender(self, net):
        """A node whose sends are all lost (departed-host semantics)."""
        node = EchoNode(net, "a")
        net.unregister("a")
        return node

    def test_lost_request_times_out(self, net, sim):
        a = self.lost_sender(net)
        EchoNode(net, "b")
        timeouts = []
        a.request("b", "q", lambda r: None, timeout=1.0,
                  on_timeout=lambda: timeouts.append(1))
        sim.run()
        assert timeouts == [1]
        assert sim.now == pytest.approx(1.0)

    def test_lost_request_registers_cancellable_pending_entry(self, net,
                                                              sim):
        a = self.lost_sender(net)
        EchoNode(net, "b")
        timeouts = []
        a.request("b", "q", lambda r: None, timeout=5.0,
                  on_timeout=lambda: timeouts.append(1))
        ((request_id, pending),) = a._pending.items()
        # Negative local id: can never collide with a network msg_id.
        assert request_id < 0
        assert pending.timeout_handle is not None
        pending.timeout_handle.cancel()
        del a._pending[request_id]
        sim.run()
        assert timeouts == []

    def test_lost_request_without_timeout_keeps_no_state(self, net, sim):
        a = self.lost_sender(net)
        EchoNode(net, "b")
        a.request("b", "q", lambda r: None)
        assert a._pending == {}
        assert not sim.step()  # nothing scheduled either

    def test_lost_entry_does_not_capture_other_responses(self, sim, rng):
        net = Network(sim, rng, default_latency=ConstantLatency(0.01),
                      loss_probability=0.9)
        a = EchoNode(net, "a")
        EchoNode(net, "b")
        timeouts, replies = [], []
        # Random(0)'s first draw is ~0.84 < 0.9: deterministically lost.
        a.request("b", "lost", replies.append, timeout=5.0,
                  on_timeout=lambda: timeouts.append("lost"))
        assert len(a._pending) == 1
        net.loss_probability = 0.0
        a.request("b", "real", replies.append, timeout=5.0,
                  on_timeout=lambda: timeouts.append("real"))
        sim.run()
        # The real reply resolved only its own entry; the lost
        # request's entry survived until its own timeout fired.
        assert replies == [{"echo": "real"}]
        assert timeouts == ["lost"]
