"""Tests for repro.net.simulator."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.simulator import Simulator


def _bits(value: float) -> bytes:
    """The exact IEEE-754 bits — `==` alone would conflate 0.0/-0.0."""
    return struct.pack("<d", value)


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        order = []
        for index in range(10):
            sim.schedule(1.0, lambda i=index: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [2.0]


class TestScheduleAtExact:
    """`schedule_at(when)` must fire with ``sim.now == when`` to the
    bit — the old delay round trip (`when - now` then `now + delay`)
    lost a ULP for adversarial floats, so deadline comparisons
    against `when` inside the callback could misfire."""

    def test_callback_sees_exact_absolute_time(self):
        # A classic non-representable round trip: with now = 0.1,
        # 0.1 + (0.3 - 0.1) != 0.3 in binary64.
        sim = Simulator()
        sim.advance(0.1)
        seen = []
        sim.schedule_at(0.3, lambda: seen.append(sim.now))
        sim.run()
        assert _bits(seen[0]) == _bits(0.3)

    def test_past_time_still_rejected(self):
        sim = Simulator()
        sim.advance(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(math.nextafter(5.0, -math.inf), lambda: None)

    def test_now_is_allowed_and_exact(self):
        sim = Simulator()
        sim.advance(1.0 / 3.0)
        seen = []
        sim.schedule_at(sim.now, lambda: seen.append(sim.now))
        sim.run()
        assert _bits(seen[0]) == _bits(1.0 / 3.0)

    @given(
        now=st.floats(min_value=0.0, max_value=1e18, allow_nan=False),
        delta=st.floats(min_value=0.0, max_value=1e18, allow_nan=False))
    def test_property_fires_bit_exact(self, now, delta):
        sim = Simulator()
        if now:
            sim.advance(now)
        when = sim.now + delta
        seen = []
        sim.schedule_at(when, lambda: seen.append(sim.now))
        sim.run()
        assert [_bits(value) for value in seen] == [_bits(when)]

    @given(st.floats(min_value=0.0, max_value=1e18, allow_nan=False))
    def test_property_past_times_rejected(self, now):
        sim = Simulator()
        if now:
            sim.advance(now)
        before = math.nextafter(sim.now, -math.inf)
        if before < sim.now:  # nextafter(0.0, -inf) is -0.0 == 0.0
            with pytest.raises(ValueError):
                sim.schedule_at(before, lambda: None)


class TestPendingCount:
    """`pending` counts live events only; tombstones left by `cancel`
    stay in the heap (visible as `heap_size`) but must not inflate the
    backlog number the deployment gauge reports."""

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        assert sim.pending == 10
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending == 5
        assert sim.heap_size == 10  # tombstones still queued

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_does_not_decrement(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        assert sim.pending == 1
        handle.cancel()  # already consumed — must be a no-op
        assert sim.pending == 1

    def test_execution_drains_pending(self):
        sim = Simulator()
        for index in range(4):
            sim.schedule(float(index + 1), lambda: None)
        sim.step()
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_post_counts_too(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        assert sim.pending == 2

    def test_cancellation_storm(self):
        # Interleave schedule/cancel/execute heavily; the live count
        # must track reality at every step.
        sim = Simulator()
        live = 0
        handles = []
        for index in range(300):
            handle = sim.schedule(1.0 + index * 1e-3, lambda: None)
            handles.append(handle)
            live += 1
            if index % 3 == 0:
                handles[index // 2].cancel()
            assert sim.heap_size == index + 1
        cancelled = sum(1 for handle in handles if handle.cancelled)
        assert sim.pending == 300 - cancelled
        sim.run()
        assert sim.pending == 0
        assert sim.heap_size == 0
        assert sim.events_processed == 300 - cancelled


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        sim.run()
        handle.cancel()  # must not raise

    def test_handle_exposes_cancelled_and_time(self):
        sim = Simulator()
        handle = sim.schedule(1.5, lambda: None)
        assert handle.time == 1.5
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2)).cancel()
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 3]
        assert sim.events_processed == 2

    def test_step_skips_dead_entries(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1)).cancel()
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True   # one live callback ran
        assert fired == [2]
        assert sim.step() is False


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_advance_moves_relative(self):
        sim = Simulator()
        sim.advance(2.0)
        sim.advance(3.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduling():
            sim.schedule(0.1, rescheduling)

        sim.schedule(0.1, rescheduling)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_max_events_counts_executed_callbacks_only(self):
        # The budget is real work: cancelled entries popped on the way
        # are free, so N live events always fit in max_events=N no
        # matter how many dead entries precede them.
        sim = Simulator()
        fired = []
        for index in range(10):
            handle = sim.schedule(float(index), lambda i=index: fired.append(i))
            if index % 2 == 0:
                handle.cancel()
        sim.run(max_events=5)  # exactly the 5 live events — no raise
        assert fired == [1, 3, 5, 7, 9]

    def test_max_events_budget_exhausted_by_live_events_only(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run(max_events=1)
        assert sim.events_processed == 1

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_execution_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
