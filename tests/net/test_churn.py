"""Tests for the churn process and overlay recovery under it."""

import random

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.net.churn import ChurnProcess


class TestChurnProcess:
    @pytest.fixture
    def deployment(self):
        config = CyclosaConfig(relay_timeout=2.0, max_retries=4)
        return CyclosaNetwork.create(num_nodes=14, seed=23, config=config,
                                     warmup_seconds=40)

    def test_crash_departures_fire_in_window(self, deployment):
        departed = []
        churn = ChurnProcess(deployment.network, deployment.rng,
                             repository=deployment.services.repository,
                             on_depart=departed.append)
        victims = deployment.nodes[10:13]
        now = deployment.simulator.now
        events = churn.schedule_departures(victims, start=now + 1,
                                           duration=10.0)
        assert all(now + 1 <= e.time <= now + 11 for e in events)
        deployment.run(15.0)
        assert sorted(departed) == sorted(v.address for v in victims)
        for victim in victims:
            assert not deployment.network.knows(victim.address)

    def test_graceful_departure_retires_from_repo(self, deployment):
        churn = ChurnProcess(deployment.network, deployment.rng,
                             repository=deployment.services.repository)
        victim = deployment.nodes[9]
        churn.schedule_departures([victim],
                                  start=deployment.simulator.now + 1,
                                  duration=1.0, style="graceful")
        deployment.run(5.0)
        fresh_sample = deployment.services.repository.sample(100)
        assert victim.address not in fresh_sample

    def test_crash_leaves_stale_repo_entry(self, deployment):
        churn = ChurnProcess(deployment.network, deployment.rng,
                             repository=deployment.services.repository)
        victim = deployment.nodes[8]
        churn.schedule_departures([victim],
                                  start=deployment.simulator.now + 1,
                                  duration=1.0, style="crash")
        deployment.run(5.0)
        assert victim.address in deployment.services.repository.sample(100)

    def test_invalid_style_rejected(self, deployment):
        churn = ChurnProcess(deployment.network, deployment.rng)
        with pytest.raises(ValueError):
            churn.schedule_departures([], start=0, duration=1, style="odd")

    def test_past_window_rejected_with_clear_error(self, deployment):
        # The deployment warmed up, so sim.now is well past zero; a
        # window behind the clock used to blow up deep inside
        # Simulator.schedule — it must fail up front, naming both the
        # window and the current simulated time.
        churn = ChurnProcess(deployment.network, deployment.rng)
        now = deployment.simulator.now
        assert now > 0
        with pytest.raises(ValueError) as excinfo:
            churn.schedule_departures(deployment.nodes[10:12],
                                      start=now - 5.0, duration=3.0)
        message = str(excinfo.value)
        assert f"[{now - 5.0}, {now - 2.0}]" in message
        assert f"sim.now={now}" in message

    def test_window_starting_exactly_now_is_fine(self, deployment):
        departed = []
        churn = ChurnProcess(deployment.network, deployment.rng,
                             repository=deployment.services.repository,
                             on_depart=departed.append)
        now = deployment.simulator.now
        churn.schedule_departures(deployment.nodes[12:13], start=now,
                                  duration=2.0)
        deployment.run(3.0)
        assert departed == [deployment.nodes[12].address]

    def test_departures_counted_and_spanned_when_observed(self):
        from repro import obs

        obs.disable(reset=True)
        deployment = CyclosaNetwork.create(num_nodes=14, seed=23,
                                           warmup_seconds=40,
                                           observe=True)
        try:
            churn = ChurnProcess(deployment.network, deployment.rng,
                                 repository=deployment.services.repository)
            crash = deployment.nodes[10]
            graceful = deployment.nodes[11]
            now = deployment.simulator.now
            churn.schedule_departures([crash], start=now + 1,
                                      duration=1.0, style="crash")
            churn.schedule_departures([graceful], start=now + 1,
                                      duration=1.0, style="graceful")
            deployment.run(5.0)

            snapshot = obs.prometheus_snapshot(obs.OBS.registry)
            assert 'cyclosa_churn_departures_total{style="crash"} 1' \
                in snapshot
            assert 'cyclosa_churn_departures_total{style="graceful"} 1' \
                in snapshot
            # each victim's own sink holds its departure span
            for victim, style in ((crash, "crash"), (graceful, "graceful")):
                spans = [s for s in obs.OBS.router.sink(victim.address)
                         if s.name == "churn.departure"]
                assert len(spans) == 1
                assert spans[0].attributes == {"node": victim.address,
                                               "style": style}
                assert spans[0].finished
        finally:
            obs.disable(reset=True)

    def test_searches_survive_ongoing_churn(self, deployment):
        churn = ChurnProcess(deployment.network, deployment.rng,
                             repository=deployment.services.repository)
        churn.schedule_departures(deployment.nodes[9:13],
                                  start=deployment.simulator.now + 2,
                                  duration=30.0)
        outcomes = []
        for index in range(10):
            outcomes.append(deployment.node(index % 4).search(
                f"churn survival probe {index}", k_override=2,
                max_wait=180.0))
        successes = sum(1 for result in outcomes if result.ok)
        assert successes >= 8  # blacklist+retry absorbs the churn
