"""Tests for the space-partitioned sharded kernel.

The load-bearing property is byte-identity: a run's merged event
order, per-node stats and aggregate counters are a pure function of
the seed — the shard count and the worker count only change *where*
events execute, never *what* executes or in which order.
"""

import pytest

from repro.experiments import shard_scale
from repro.net.shards import ShardActor, ShardSpec, shard_of
from repro.net.simulator import ShardedSimulator

pytestmark = pytest.mark.shard


class EchoActor(ShardActor):
    """Minimal traffic source: each node pings a deterministic next
    neighbour once a second; neighbours echo; node 7 departs early."""

    def on_start(self):
        self.pings = 0
        self.echoes = 0
        self.set_timer(self.rng.uniform(0.0, 1.0), "ping")
        if self.address == "n000007":
            self.set_timer(2.0, "depart")

    def _neighbour(self):
        me = int(self.address[1:])
        return f"n{(me + 1) % self.config['num_nodes']:06d}"

    def on_timer(self, tag):
        if tag == "ping":
            self.send(self._neighbour(), "ping", self.pings)
            self.pings += 1
            self.set_timer(1.0, "ping")
        elif tag == "depart":
            self.depart()

    def on_message(self, src, kind, payload):
        if kind == "ping":
            self.send(src, "echo", payload)
        else:
            self.echoes += 1

    def node_stats(self):
        return {"pings": self.pings, "echoes": self.echoes}


def _echo_run(shards, workers, seed=0, num_nodes=40):
    kernel = ShardedSimulator(
        EchoActor, {"num_nodes": num_nodes}, num_nodes=num_nodes,
        shards=shards, workers=workers, seed=seed, digest=True,
        collect_node_stats=True)
    return kernel.run(until=6.0)


class TestByteIdentity:
    def test_identical_across_shard_counts(self):
        reference = _echo_run(shards=1, workers=1)
        for shards in (2, 4):
            candidate = _echo_run(shards=shards, workers=1)
            assert candidate.event_order_digest \
                == reference.event_order_digest
            assert candidate.events == reference.events
            assert candidate.node_stats == reference.node_stats
            assert candidate.aggregate == reference.aggregate
            assert candidate.departed == reference.departed

    def test_identical_across_worker_counts(self):
        reference = _echo_run(shards=4, workers=1)
        for workers in (2, 4):
            candidate = _echo_run(shards=4, workers=workers)
            assert candidate.event_order_digest \
                == reference.event_order_digest
            assert candidate.node_stats == reference.node_stats

    def test_seed_actually_changes_the_run(self):
        assert _echo_run(1, 1, seed=0).event_order_digest \
            != _echo_run(1, 1, seed=1).event_order_digest

    def test_churn_chaos_experiment_identical_across_layouts(self):
        layouts = ((1, 1), (2, 1), (4, 2))
        reports = [
            shard_scale.run(num_nodes=150, shards=shards, workers=workers,
                            duration=4.0, seed=3, digest=True,
                            collect_node_stats=True)
            for shards, workers in layouts
        ]
        # The scenario echo and the cross-shard *accounting* naturally
        # depend on the layout; everything the model computed must not.
        def outcome(report):
            return {key: report[key] for key in (
                "windows", "events", "messages_sent", "dropped_to_departed",
                "departed", "completed_rounds", "ok_rounds",
                "partial_rounds", "failed_rounds", "chaos_dropped",
                "event_order_digest", "node_stats")}

        reference = outcome(reports[0])
        for report in reports[1:]:
            assert outcome(report) == reference

    def test_gate_passes(self, capsys):
        from benchmarks.check_shard_determinism import main

        assert main(["--nodes", "80", "--duration", "3"]) == 0
        assert "identical" in capsys.readouterr().out


class TestKernelBehaviour:
    def test_departed_nodes_stop_and_drop_traffic(self):
        report = _echo_run(shards=2, workers=1)
        assert report.departed == 1
        assert report.dropped_to_departed > 0
        # The departed node's counters freeze at departure time.
        assert report.node_stats["n000007"]["pings"] <= 3

    def test_cross_shard_only_counted_when_sharded(self):
        assert _echo_run(shards=1, workers=1).cross_shard_messages == 0
        sharded = _echo_run(shards=4, workers=1)
        assert 0 < sharded.cross_shard_messages <= sharded.messages_sent

    def test_events_per_sec_positive(self):
        report = _echo_run(shards=1, workers=1)
        assert report.events > 0
        assert report.events_per_sec > 0

    def test_report_counts_are_consistent(self):
        report = _echo_run(shards=4, workers=1)
        # Every delivered message and every timer firing is an event.
        assert report.events \
            <= report.messages_sent + report.timers_set


class TestValidation:
    def test_workers_cannot_exceed_shards(self):
        with pytest.raises(ValueError):
            ShardedSimulator(EchoActor, {"num_nodes": 4}, num_nodes=4,
                             shards=2, workers=3)

    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardSpec(num_nodes=4, lookahead=0.0)

    def test_window_cannot_exceed_lookahead(self):
        with pytest.raises(ValueError):
            ShardSpec(num_nodes=4, lookahead=0.05, window=0.06)

    def test_run_is_one_shot(self):
        kernel = ShardedSimulator(EchoActor, {"num_nodes": 8},
                                  num_nodes=8, shards=1)
        kernel.run(until=1.0)
        with pytest.raises(RuntimeError):
            kernel.run(until=1.0)

    def test_scenario_rejects_unknown_knobs(self):
        with pytest.raises(TypeError):
            shard_scale.run(num_nodes=10, duration=0.5, bogus_knob=1)


class TestShardOf:
    def test_in_range_and_deterministic(self):
        for index in range(200):
            address = f"n{index:06d}"
            shard = shard_of(address, 4)
            assert 0 <= shard < 4
            assert shard == shard_of(address, 4)

    def test_single_shard_is_zero(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_addresses(self):
        counts = [0] * 4
        for index in range(1000):
            counts[shard_of(f"n{index:06d}", 4)] += 1
        assert min(counts) > 100  # crc32 spreads the address space
