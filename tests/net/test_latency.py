"""Tests for repro.net.latency models."""

import random

import pytest

from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    HeavyTailLatency,
    LogNormalLatency,
    ScaledLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return random.Random(99)


def _samples(model, rng, n=4000):
    return [model.sample(rng) for _ in range(n)]


class TestConstant:
    def test_always_same(self, rng):
        model = ConstantLatency(0.05)
        assert all(s == 0.05 for s in _samples(model, rng, 10))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniform:
    def test_within_bounds(self, rng):
        model = UniformLatency(0.01, 0.02)
        assert all(0.01 <= s <= 0.02 for s in _samples(model, rng))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.05, 0.01)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.2)


class TestLogNormal:
    def test_median_calibration(self, rng):
        model = LogNormalLatency(median=0.1, sigma=0.4)
        samples = sorted(_samples(model, rng))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(0.1, rel=0.1)

    def test_all_positive(self, rng):
        model = LogNormalLatency(median=0.1)
        assert all(s > 0 for s in _samples(model, rng, 500))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.1, sigma=0.0)


class TestHeavyTail:
    def test_has_a_heavier_tail_than_its_body(self, rng):
        model = HeavyTailLatency(median=1.0, tail_prob=0.1, tail_scale=10.0)
        samples = sorted(_samples(model, rng))
        p50 = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert p99 > 8 * p50

    def test_zero_tail_prob_is_lognormal_like(self, rng):
        model = HeavyTailLatency(median=1.0, tail_prob=0.0)
        assert max(_samples(model, rng, 500)) < 50.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HeavyTailLatency(median=-1.0)
        with pytest.raises(ValueError):
            HeavyTailLatency(median=1.0, tail_prob=1.5)
        with pytest.raises(ValueError):
            HeavyTailLatency(median=1.0, tail_alpha=0.0)


class TestComposite:
    def test_sum_of_constants(self, rng):
        model = CompositeLatency([ConstantLatency(0.1), ConstantLatency(0.2)])
        assert model.sample(rng) == pytest.approx(0.3)

    def test_empty_composite_is_zero(self, rng):
        assert CompositeLatency([]).sample(rng) == 0.0


class TestScaled:
    def test_scaling(self, rng):
        model = ScaledLatency(ConstantLatency(0.1), 3.0)
        assert model.sample(rng) == pytest.approx(0.3)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaledLatency(ConstantLatency(0.1), -1.0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        model = LogNormalLatency(median=0.1)
        a = _samples(model, random.Random(5), 50)
        b = _samples(model, random.Random(5), 50)
        assert a == b
