"""Tests for repro.net.tls: handshake, records, attested channels."""

import random

import pytest

from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode
from repro.net.tls import (
    SecureChannel,
    SecureChannelManager,
    SgxAuthenticator,
    SignatureAuthenticator,
    TlsError,
    _directional_keys,
)
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy
from repro.sgx.enclave import Enclave, EnclaveHost


class TlsNode(NetNode):
    def __init__(self, network, address, manager_factory):
        super().__init__(network, address)
        self.tls = manager_factory(self)

    def handle_request(self, ctx):
        self.tls.handle_handshake(ctx)


@pytest.fixture
def rng():
    return random.Random(7)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim, rng):
    return Network(sim, rng, default_latency=ConstantLatency(0.01))


def _sig_manager(rng):
    def factory(node):
        identity = IdentityKeyPair.generate(bits=512, rng=rng)
        return SecureChannelManager(
            node, SignatureAuthenticator(identity), rng)

    return factory


class TestHandshake:
    def test_establish_and_roundtrip(self, net, sim, rng):
        a = TlsNode(net, "a", _sig_manager(rng))
        b = TlsNode(net, "b", _sig_manager(rng))
        ready = []
        a.tls.establish("b", on_ready=ready.append)
        sim.run()
        assert ready
        channel_a = a.tls.channel("b")
        channel_b = b.tls.channel("a")
        sealed = channel_a.seal({"query": "secret"}, rng=rng)
        assert channel_b.open(sealed) == {"query": "secret"}

    def test_bidirectional_records(self, net, sim, rng):
        a = TlsNode(net, "a", _sig_manager(rng))
        b = TlsNode(net, "b", _sig_manager(rng))
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        back = b.tls.channel("a").seal("reply", rng=rng)
        assert a.tls.channel("b").open(back) == "reply"

    def test_on_established_fires_both_sides(self, net, sim, rng):
        established = []

        def factory_with_hook(node):
            identity = IdentityKeyPair.generate(bits=512, rng=rng)
            return SecureChannelManager(
                node, SignatureAuthenticator(identity), rng,
                on_established=lambda ch: established.append(
                    (node.address, ch.peer)))

        a = TlsNode(net, "a", factory_with_hook)
        TlsNode(net, "b", factory_with_hook)
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        assert ("a", "b") in established and ("b", "a") in established

    def test_handshake_timeout(self, net, sim, rng):
        a = TlsNode(net, "a", _sig_manager(rng))
        failures = []
        # "b" exists but never answers handshake kinds.
        NetNode(net, "b")
        a.tls.establish("b", on_ready=lambda ch: None,
                        on_fail=failures.append, timeout=1.0)
        sim.run()
        assert failures == ["handshake timeout"]

    def test_pinned_trust_anchor_rejects_unknown_key(self, net, sim, rng):
        pinned_fingerprint = b"\x00" * 32

        def pinning_factory(node):
            identity = IdentityKeyPair.generate(bits=512, rng=rng)
            return SecureChannelManager(
                node,
                SignatureAuthenticator(
                    identity,
                    trust_anchor=lambda pub: pub.fingerprint() == pinned_fingerprint),
                rng)

        a = TlsNode(net, "a", pinning_factory)
        TlsNode(net, "b", _sig_manager(rng))
        failures = []
        a.tls.establish("b", on_ready=lambda ch: None,
                        on_fail=failures.append, timeout=5.0)
        sim.run()
        assert failures  # peer key not pinned -> rejected


class TestRecordLayer:
    def _pair(self):
        send_a, recv_a = _directional_keys(b"s" * 32, initiator=True)
        send_b, recv_b = _directional_keys(b"s" * 32, initiator=False)
        return (SecureChannel(peer="b", send_key=send_a, recv_key=recv_a),
                SecureChannel(peer="a", send_key=send_b, recv_key=recv_b))

    def test_out_of_order_delivery_accepted(self, rng):
        a, b = self._pair()
        first = a.seal("one", rng=rng)
        second = a.seal("two", rng=rng)
        assert b.open(second) == "two"
        assert b.open(first) == "one"

    def test_replay_rejected(self, rng):
        a, b = self._pair()
        record = a.seal("payload", rng=rng)
        assert b.open(record) == "payload"
        with pytest.raises(TlsError):
            b.open(record)

    def test_tampered_record_rejected(self, rng):
        a, b = self._pair()
        record = bytearray(a.seal("payload", rng=rng))
        record[-1] ^= 1
        with pytest.raises(TlsError):
            b.open(bytes(record))

    def test_short_record_rejected(self):
        _, b = self._pair()
        with pytest.raises(TlsError):
            b.open(b"tiny")

    def test_directional_keys_are_asymmetric(self):
        send_a, recv_a = _directional_keys(b"s" * 32, initiator=True)
        assert send_a.key != recv_a.key


class TestSgxAuthenticatedChannels:
    class PeerEnclave(Enclave):
        ENCLAVE_VERSION = "1"
        BASE_FOOTPRINT_BYTES = 4096

    def _sgx_factory(self, rng, ias, policy):
        def factory(node):
            host = EnclaveHost(rng)
            enclave = host.create_enclave(self.PeerEnclave)
            ias.provision_host(host)
            node.host = host
            node.enclave = enclave
            return SecureChannelManager(
                node, SgxAuthenticator(enclave, host, ias, policy), rng)

        return factory

    def test_attested_handshake_succeeds(self, net, sim, rng):
        ias = IntelAttestationService()
        policy = MeasurementPolicy()
        policy.allow_class(self.PeerEnclave)
        factory = self._sgx_factory(rng, ias, policy)
        a = TlsNode(net, "a", factory)
        TlsNode(net, "b", factory)
        ready = []
        a.tls.establish("b", on_ready=ready.append)
        sim.run()
        assert ready

    def test_unattested_initiator_gets_no_channel(self, net, sim, rng):
        ias = IntelAttestationService()
        policy = MeasurementPolicy()
        policy.allow_class(self.PeerEnclave)
        # Responder requires quotes; initiator only has a signature.
        responder = TlsNode(net, "b", self._sgx_factory(rng, ias, policy))
        initiator = TlsNode(net, "a", _sig_manager(rng))
        failures = []
        initiator.tls.establish("b", on_ready=lambda ch: None,
                                on_fail=failures.append, timeout=2.0)
        sim.run()
        assert failures
        assert responder.tls.channel("a") is None

    def test_revoked_platform_rejected(self, net, sim, rng):
        ias = IntelAttestationService()
        policy = MeasurementPolicy()
        policy.allow_class(self.PeerEnclave)
        factory = self._sgx_factory(rng, ias, policy)
        a = TlsNode(net, "a", factory)
        b = TlsNode(net, "b", factory)
        ias.revoke(b.host.platform_id)
        failures = []
        a.tls.establish("b", on_ready=lambda ch: None,
                        on_fail=failures.append, timeout=2.0)
        sim.run()
        assert failures == ["peer credential rejected"]
