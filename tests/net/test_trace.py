"""Tests for the message-tracing wiretap."""

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.trace import MessageTrace
from repro.net.transport import Network, NetNode


class Echo(NetNode):
    def handle_request(self, ctx):
        ctx.respond("pong")


@pytest.fixture
def setup():
    rng = random.Random(2)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    a = Echo(net, "a")
    b = Echo(net, "b")
    return sim, net, a, b


class TestTrace:
    def test_captures_matching_kinds(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, kinds=("ping",)) as trace:
            a.send("b", "ping", b"\x00" * 40)
            a.send("b", "other", b"\x00" * 10)
            sim.run()
        assert len(trace) == 1
        assert trace.records[0].size_bytes == 40
        assert trace.records[0].payload_is_bytes

    def test_filters_by_endpoints(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, dst="b") as trace:
            a.send("b", "x", "one")
            b.send("a", "x", "two")
            sim.run()
        assert len(trace) == 1
        assert trace.records[0].dst == "b"

    def test_uninstalls_on_exit(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net) as trace:
            a.send("b", "x", "one")
        a.send("b", "x", "two")
        sim.run()
        assert len(trace) == 1

    def test_rpc_roundtrip_traced_both_ways(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net) as trace:
            a.request("b", "ping", lambda r: None)
            sim.run()
        kinds = [r.kind for r in trace]
        assert "rpc.req" in kinds and "rpc.rsp" in kinds
        assert trace.between("a", "b") and trace.between("b", "a")

    def test_double_install_rejected(self, setup):
        sim, net, a, b = setup
        trace = MessageTrace(net)
        with trace:
            with pytest.raises(RuntimeError):
                trace.__enter__()

    def test_delivery_unaffected(self, setup):
        sim, net, a, b = setup
        replies = []
        with MessageTrace(net):
            a.request("b", "q", replies.append)
            sim.run()
        assert replies == ["pong"]

    def test_sizes_helper(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, kinds=("data",)) as trace:
            for size in (10, 20, 30):
                a.send("b", "data", b"\x00" * size)
            sim.run()
        assert trace.sizes() == [10, 20, 30]
