"""Tests for the message-tracing wiretap."""

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.trace import MessageTrace
from repro.net.transport import Network, NetNode


class Echo(NetNode):
    def handle_request(self, ctx):
        ctx.respond("pong")


@pytest.fixture
def setup():
    rng = random.Random(2)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    a = Echo(net, "a")
    b = Echo(net, "b")
    return sim, net, a, b


class TestTrace:
    def test_captures_matching_kinds(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, kinds=("ping",)) as trace:
            a.send("b", "ping", b"\x00" * 40)
            a.send("b", "other", b"\x00" * 10)
            sim.run()
        assert len(trace) == 1
        assert trace.records[0].size_bytes == 40
        assert trace.records[0].payload_is_bytes

    def test_filters_by_endpoints(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, dst="b") as trace:
            a.send("b", "x", "one")
            b.send("a", "x", "two")
            sim.run()
        assert len(trace) == 1
        assert trace.records[0].dst == "b"

    def test_uninstalls_on_exit(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net) as trace:
            a.send("b", "x", "one")
        a.send("b", "x", "two")
        sim.run()
        assert len(trace) == 1

    def test_rpc_roundtrip_traced_both_ways(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net) as trace:
            a.request("b", "ping", lambda r: None)
            sim.run()
        kinds = [r.kind for r in trace]
        assert "rpc.req" in kinds and "rpc.rsp" in kinds
        assert trace.between("a", "b") and trace.between("b", "a")

    def test_double_install_rejected(self, setup):
        sim, net, a, b = setup
        trace = MessageTrace(net)
        with trace:
            with pytest.raises(RuntimeError):
                trace.__enter__()

    def test_delivery_unaffected(self, setup):
        sim, net, a, b = setup
        replies = []
        with MessageTrace(net):
            a.request("b", "q", replies.append)
            sim.run()
        assert replies == ["pong"]

    def test_sizes_helper(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, kinds=("data",)) as trace:
            for size in (10, 20, 30):
                a.send("b", "data", b"\x00" * size)
            sim.run()
        assert trace.sizes() == [10, 20, 30]

    def test_wire_image_only_captured_on_request(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net) as plain, \
                MessageTrace(net, capture_plaintext=True) as deep:
            a.send("b", "data", b"\xaa\xbb")
            sim.run()
        assert plain.records[0].wire_image is None
        assert deep.records[0].wire_image == b"\xaa\xbb"

    def test_wire_image_encodes_structured_payloads(self, setup):
        sim, net, a, b = setup
        with MessageTrace(net, capture_plaintext=True) as trace:
            a.send("b", "data", {"question": "flu symptoms"})
            sim.run()
        image = trace.records[0].wire_image
        assert isinstance(image, bytes) and b"flu symptoms" in image


class TestTraceMetrics:
    def test_wiretap_feeds_metrics_registry_when_enabled(self, setup):
        from repro import obs

        sim, net, a, b = setup
        obs.disable(reset=True)
        obs.enable(fresh=True)
        try:
            with MessageTrace(net):
                a.send("b", "data", b"\x00" * 100)
                a.send("b", "data", b"\x00" * 600)
                a.send("b", "ctrl", b"\x00" * 8)
                sim.run()
            snapshot = obs.prometheus_snapshot(obs.OBS.registry)
            assert 'cyclosa_net_traced_messages_total{kind="data"} 2' \
                in snapshot
            assert 'cyclosa_net_traced_messages_total{kind="ctrl"} 1' \
                in snapshot
            # byte histogram: the 100 B message is <= the 128 bucket,
            # the 600 B one only lands in 768 and above
            assert 'cyclosa_net_traced_message_bytes_bucket' \
                '{kind="data",le="128"} 1' in snapshot
            assert 'cyclosa_net_traced_message_bytes_bucket' \
                '{kind="data",le="768"} 2' in snapshot
        finally:
            obs.disable(reset=True)

    def test_wiretap_records_nothing_when_disabled(self, setup):
        from repro import obs

        sim, net, a, b = setup
        obs.disable(reset=True)
        with MessageTrace(net) as trace:
            a.send("b", "data", b"\x00" * 100)
            sim.run()
        assert len(trace) == 1  # the tap itself still works
        assert obs.prometheus_snapshot(obs.OBS.registry) == ""
