"""Secure-channel lifecycle: rekeying, concurrent handshakes, caching."""

import random

import pytest

from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode
from repro.net.tls import SecureChannelManager, SignatureAuthenticator, TlsError


class TlsNode(NetNode):
    def __init__(self, network, address, rng):
        super().__init__(network, address)
        identity = IdentityKeyPair.generate(bits=512, rng=rng)
        self.tls = SecureChannelManager(
            self, SignatureAuthenticator(identity), rng)

    def handle_request(self, ctx):
        self.tls.handle_handshake(ctx)


@pytest.fixture
def pair():
    rng = random.Random(21)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.01))
    a = TlsNode(net, "a", rng)
    b = TlsNode(net, "b", rng)
    return sim, rng, a, b


class TestLifecycle:
    def test_rekey_replaces_channel(self, pair):
        sim, rng, a, b = pair
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        first = a.tls.channel("b")
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        second = a.tls.channel("b")
        assert second is not first
        assert first.send_key.key != second.send_key.key

    def test_old_records_unreadable_after_rekey(self, pair):
        sim, rng, a, b = pair
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        stale = a.tls.channel("b").seal("old secret", rng=rng)
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        with pytest.raises(TlsError):
            b.tls.channel("a").open(stale)

    def test_concurrent_handshakes_both_complete(self, pair):
        """Simultaneous cross-handshakes: both callers get on_ready and
        the two sides end up with a *matching* channel pair (the
        smaller address keeps the initiator role)."""
        sim, rng, a, b = pair
        ready = []
        a.tls.establish("b", on_ready=lambda ch: ready.append("a->b"))
        b.tls.establish("a", on_ready=lambda ch: ready.append("b->a"))
        sim.run()
        assert sorted(ready) == ["a->b", "b->a"]
        record = a.tls.channel("b").seal("after the race", rng=rng)
        assert b.tls.channel("a").open(record) == "after the race"
        reverse = b.tls.channel("a").seal("and back", rng=rng)
        assert a.tls.channel("b").open(reverse) == "and back"

    def test_channel_cache_lookup(self, pair):
        sim, rng, a, b = pair
        assert a.tls.channel("b") is None
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        assert a.tls.channel("b") is not None
        assert a.tls.channel("stranger") is None

    def test_many_sequential_records(self, pair):
        sim, rng, a, b = pair
        a.tls.establish("b", on_ready=lambda ch: None)
        sim.run()
        sender = a.tls.channel("b")
        receiver = b.tls.channel("a")
        for index in range(100):
            assert receiver.open(sender.seal(index, rng=rng)) == index
