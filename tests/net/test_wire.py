"""Tests for repro.net.wire."""

from hypothesis import given, strategies as st

from repro.net import wire


json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.text(max_size=30), st.binary(max_size=30))

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=15)


class TestEncodeDecode:
    def test_scalar_roundtrip(self):
        for value in (None, True, 42, "text", 3.5):
            assert wire.decode(wire.encode(value)) == value

    def test_bytes_roundtrip(self):
        assert wire.decode(wire.encode(b"\x00\xff raw")) == b"\x00\xff raw"

    def test_nested_structure_roundtrip(self):
        value = {"key": [1, b"\x01\x02", {"inner": "x"}], "n": None}
        assert wire.decode(wire.encode(value)) == value

    def test_deterministic_key_order(self):
        assert wire.encode({"b": 1, "a": 2}) == wire.encode({"a": 2, "b": 1})

    def test_encoding_is_compact(self):
        assert b" " not in wire.encode({"a": [1, 2, 3]})

    def test_tuples_become_lists(self):
        assert wire.decode(wire.encode((1, 2))) == [1, 2]

    @given(json_values)
    def test_property_roundtrip(self, value):
        decoded = wire.decode(wire.encode(value))

        def normalise(item):
            if isinstance(item, tuple):
                return [normalise(x) for x in item]
            if isinstance(item, list):
                return [normalise(x) for x in item]
            if isinstance(item, dict):
                return {k: normalise(v) for k, v in item.items()}
            return item

        assert decoded == normalise(value)

    @given(json_values)
    def test_property_deterministic(self, value):
        assert wire.encode(value) == wire.encode(value)
