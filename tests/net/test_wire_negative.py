"""Negative-path tests for the wire codec."""

import pytest

from repro.net import wire


class TestMalformedInput:
    def test_not_json(self):
        with pytest.raises(Exception):
            wire.decode(b"\x00\x01 not json")

    def test_truncated_json(self):
        with pytest.raises(Exception):
            wire.decode(b'{"key": [1, 2')

    def test_invalid_utf8(self):
        with pytest.raises(Exception):
            wire.decode(b"\xff\xfe\xfd")

    def test_bytes_tag_with_bad_hex(self):
        with pytest.raises(ValueError):
            wire.decode(b'{"__bytes__": "zz-not-hex"}')

    def test_bytes_tag_plus_other_keys_is_a_plain_dict(self):
        # Only a dict whose *sole* key is the tag decodes to bytes.
        decoded = wire.decode(b'{"__bytes__": "00", "other": 1}')
        assert decoded == {"__bytes__": "00", "other": 1}

    def test_empty_payload(self):
        with pytest.raises(Exception):
            wire.decode(b"")


class TestCodecBoundaries:
    def test_deeply_nested_roundtrip(self):
        value = {"a": [{"b": [{"c": [b"\x01", None, True]}]}]}
        assert wire.decode(wire.encode(value)) == value

    def test_unicode_text(self):
        value = {"query": "santé publique — rückfall 健康"}
        assert wire.decode(wire.encode(value)) == value

    def test_large_bytes_roundtrip(self):
        blob = bytes(range(256)) * 256  # 64 KiB
        assert wire.decode(wire.encode({"blob": blob}))["blob"] == blob
