"""Tests for repro.faults.plan: matching, validation, description."""

import json
import math

import pytest

from repro.faults.plan import (Corrupt, CrashAfterReceive, Delay,
                               DenyAttestation, Drop, Duplicate, FaultPlan,
                               FORWARD_REQUESTS, MATCH_ALL, MessageMatch,
                               RateLimitStorm, describe_fault)


class TestMessageMatch:
    def test_match_all_matches_everything(self):
        assert MATCH_ALL.matches("a", "b", "anything.at.all")

    def test_exact_kind(self):
        match = MessageMatch(kind="rpc.rsp")
        assert match.matches("a", "b", "rpc.rsp")
        assert not match.matches("a", "b", "rpc.req")

    def test_kind_prefix_wildcard(self):
        match = MessageMatch(kind="cyclosa.fwd*")
        assert match.matches("a", "b", "cyclosa.fwd.req")
        assert match.matches("a", "b", "cyclosa.fwd")
        assert not match.matches("a", "b", "cyclosa.other")

    def test_endpoint_filters(self):
        match = MessageMatch(src="a", dst="b")
        assert match.matches("a", "b", "x")
        assert not match.matches("a", "c", "x")
        assert not match.matches("c", "b", "x")

    def test_describe_uses_stars_for_wildcards(self):
        assert MATCH_ALL.describe() == "*->*:*"
        assert MessageMatch(src="a", kind="k").describe() == "a->*:k"


class TestValidation:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Drop(probability=1.5)
        with pytest.raises(ValueError):
            Drop(probability=-0.1)

    def test_window_ending_before_start_rejected(self):
        with pytest.raises(ValueError):
            Delay(start=10.0, end=5.0)
        with pytest.raises(ValueError):
            DenyAttestation(nodes=("n",), start=10.0, end=5.0)
        with pytest.raises(ValueError):
            RateLimitStorm(start=10.0, end=5.0)

    def test_crash_needs_node_and_positive_after(self):
        with pytest.raises(ValueError):
            CrashAfterReceive()
        with pytest.raises(ValueError):
            CrashAfterReceive(node="n", after=0)

    def test_deny_attestation_needs_nodes(self):
        with pytest.raises(ValueError):
            DenyAttestation()

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(TypeError):
            FaultPlan(faults=("not a fault",))

    def test_activation_window_half_open(self):
        fault = Drop(start=1.0, end=2.0)
        assert not fault.active(0.5)
        assert fault.active(1.0)
        assert not fault.active(2.0)


class TestPlanSplit:
    def test_link_and_service_faults_partition(self):
        plan = FaultPlan(seed=3, faults=(
            Drop(match=FORWARD_REQUESTS),
            Duplicate(),
            DenyAttestation(nodes=("n",)),
            RateLimitStorm(),
            CrashAfterReceive(node="n"),
        ))
        assert [f.name for f in plan.link_faults()] == [
            "drop", "duplicate", "crash"]
        assert [f.name for f in plan.service_faults()] == [
            "attest-deny", "ratelimit-storm"]


class TestDescribe:
    def test_describe_fault_is_json_friendly(self):
        description = describe_fault(
            DenyAttestation(nodes=("a", "b"), start=0.0))
        assert description["fault"] == "attest-deny"
        assert description["nodes"] == ["a", "b"]
        assert description["end"] == "inf"
        json.dumps(description)  # must encode without a custom encoder

    def test_describe_embeds_match(self):
        description = describe_fault(Corrupt(match=FORWARD_REQUESTS))
        assert description["match"] == "*->*:cyclosa.fwd.req"

    def test_equal_plans_describe_identically(self):
        def build():
            return FaultPlan(seed=9, faults=(
                Drop(match=FORWARD_REQUESTS, probability=0.25),
                Delay(extra=0.4, jitter=0.2, end=math.inf),
                CrashAfterReceive(node="node003"),
            ))

        first = json.dumps(build().describe(), sort_keys=True)
        second = json.dumps(build().describe(), sort_keys=True)
        assert first == second
