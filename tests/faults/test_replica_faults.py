"""Fault injection meets the engine replica tier.

Two behaviours earn their own file: a rate-limit storm must blanket
*every* replica (a storm that only hit replica 0 would quietly exempt
two thirds of the identities), and the chaos matrix's ``replica-crash``
cell must show searches surviving a crashed replica."""

import pytest

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.faults import chaos
from repro.faults.inject import install
from repro.faults.plan import FaultPlan, RateLimitStorm
from repro.searchengine.ratelimit import RateLimiter

pytestmark = pytest.mark.chaos


@pytest.fixture
def replica_deployment():
    return CyclosaNetwork.create(
        num_nodes=6, seed=4,
        config=CyclosaConfig(engine_replicas=3, engine_rate_limit=100))


class TestStormCoversTheTier:
    def test_storm_wraps_every_replica_and_uninstall_restores(
            self, replica_deployment):
        originals = [node.rate_limiter
                     for node in replica_deployment.engine_nodes]
        plan = FaultPlan(faults=(RateLimitStorm(start=0.0, end=10.0),))
        installed = install(plan, replica_deployment)
        for node, original in zip(replica_deployment.engine_nodes,
                                  originals):
            assert node.rate_limiter is not original
        installed.uninstall()
        for node, original in zip(replica_deployment.engine_nodes,
                                  originals):
            assert node.rate_limiter is original

    def test_storm_captchas_whichever_replica_serves(
            self, replica_deployment):
        plan = FaultPlan(faults=(RateLimitStorm(start=0.0, end=1e9),))
        install(plan, replica_deployment)
        statuses = {
            replica_deployment.node(index).search("symptoms cancer").status
            for index in range(3)}
        assert statuses == {"captcha"}


class TestReplicaCrashCell:
    def test_cell_exists_with_its_overrides(self):
        (cell,) = chaos.matrix_cells(["replica-crash"])
        assert cell.config_overrides["engine_replicas"] == 3
        assert cell.config_overrides["engine_cache_size"] == 256

    def test_searches_survive_a_crashed_replica(self):
        row = chaos.run_cell(chaos.matrix_cells(["replica-crash"])[0],
                             num_nodes=6, num_queries=3, seed=11)
        assert row["faults_injected"].get("crash", 0) >= 1
        assert row["hung_searches"] == 0
        assert row["disjointness_violations"] == 0
        assert sum(row["statuses"].values()) == row["queries"]
        assert row["success_rate"] >= 0.5
