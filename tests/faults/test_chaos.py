"""Tests for repro.faults.chaos: the fault-matrix harness, its two
invariants and the byte-identical report guarantee."""

import pytest

from repro.faults import chaos

pytestmark = pytest.mark.chaos

#: Matrix scale for tests: small but large enough that faults fire.
SCALE = dict(num_nodes=6, num_queries=2, seed=11)


class TestMatrixShape:
    def test_default_matrix_covers_every_fault_family(self):
        names = [cell.name for cell in chaos.default_matrix()]
        assert names[0] == "baseline"
        for expected in ("drop-forward", "slow-relays", "duplicate-storm",
                         "corrupt-forward", "crash-after-receive",
                         "attest-deny", "ratelimit-storm", "replica-crash",
                         "combo"):
            assert expected in names

    def test_matrix_cells_filters_in_matrix_order(self):
        cells = chaos.matrix_cells(["combo", "baseline"])
        assert [c.name for c in cells] == ["baseline", "combo"]

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            chaos.matrix_cells(["no-such-cell"])


class TestRunCell:
    def test_baseline_cell_succeeds_cleanly(self):
        row = chaos.run_cell(chaos.matrix_cells(["baseline"])[0], **SCALE)
        assert row["success_rate"] == 1.0
        assert row["hung_searches"] == 0
        assert row["disjointness_violations"] == 0
        assert row["faults_injected"] == {}

    def test_faulted_cell_terminates_every_search(self):
        row = chaos.run_cell(
            chaos.matrix_cells(["combo"], plan_seed=3)[0], **SCALE)
        # Faults actually fired, yet nothing hung and no real-query
        # retry ever reused a fake-leg relay (the §VI-b invariants).
        assert row["faults_injected"]
        assert sum(row["statuses"].values()) == row["queries"]
        assert row["hung_searches"] == 0
        assert row["disjointness_violations"] == 0

    def test_ratelimit_storm_fails_terminally_not_hangs(self):
        row = chaos.run_cell(
            chaos.matrix_cells(["ratelimit-storm"])[0], **SCALE)
        assert row["statuses"] == {"captcha": row["queries"]}
        assert row["hung_searches"] == 0


class TestDeterminism:
    def test_report_json_byte_identical_across_runs(self):
        def run():
            return chaos.report_json(chaos.run_matrix(
                chaos.matrix_cells(["baseline", "drop-forward", "combo"],
                                   plan_seed=3), **SCALE))

        assert run() == run()
