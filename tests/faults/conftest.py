"""Fault-test hygiene: the OBS singleton is process-global, so every
test leaves it disabled and empty for whoever runs next."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)
