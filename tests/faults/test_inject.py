"""Tests for repro.faults.inject: each interceptor on a raw transport,
plus install/uninstall hygiene and the obs wiring."""

import random

import pytest

from repro.faults.inject import FaultInjectionError, FaultInjector, install
from repro.faults.plan import (Corrupt, CrashAfterReceive, Delay,
                               DenyAttestation, Drop, Duplicate, FaultPlan,
                               MessageMatch)
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode

DATA = MessageMatch(kind="data")


class Recorder(NetNode):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.datagrams = []

    def handle_datagram(self, message):
        self.datagrams.append(message)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, random.Random(0),
                   default_latency=ConstantLatency(0.01))


def installed(net, *faults, seed=0):
    return FaultInjector(net, FaultPlan(seed=seed, faults=faults)).install()


class TestLinkFaults:
    def test_drop_loses_matching_messages(self, net, sim):
        injector = installed(net, Drop(match=DATA))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "x")
        a.send("b", "other", "y")
        sim.run()
        assert [m.kind for m in b.datagrams] == ["other"]
        assert injector.counts == {"drop": 1}
        assert net.stats.dropped == 1

    def test_delay_applies_once(self, net, sim):
        installed(net, Delay(match=DATA, extra=0.5))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "x")
        sim.run()
        # One base flight plus exactly one injected 0.5s hold — the
        # re-entering delivery must not be delayed a second time.
        assert len(b.datagrams) == 1
        assert sim.now == pytest.approx(0.51)

    def test_duplicate_delivers_twice(self, net, sim):
        injector = installed(net, Duplicate(match=DATA, extra_delay=0.2))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "x")
        sim.run()
        assert [m.payload for m in b.datagrams] == ["x", "x"]
        assert injector.counts == {"duplicate": 1}

    def test_corrupt_flips_exactly_one_byte(self, net, sim):
        injector = installed(net, Corrupt(match=DATA))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        original = b"sealed record payload"
        a.send("b", "data", original)
        sim.run()
        (received,) = b.datagrams
        assert len(received.payload) == len(original)
        assert received.payload != original
        differing = [i for i, (x, y) in
                     enumerate(zip(original, received.payload)) if x != y]
        assert len(differing) == 1
        assert injector.counts == {"corrupt": 1}

    def test_corrupt_skips_non_bytes_payloads(self, net, sim):
        injector = installed(net, Corrupt(match=DATA))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", {"not": "bytes"})
        sim.run()
        assert b.datagrams[0].payload == {"not": "bytes"}
        assert injector.counts == {}

    def test_crash_after_receive_silences_node(self, net, sim):
        injector = installed(
            net, CrashAfterReceive(node="b", trigger=DATA, after=1))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "trigger")
        sim.run()
        # b consumed the trigger (the sender's copy is gone)...
        assert len(b.datagrams) == 1
        # ...but is dead now: nothing it sends ever arrives.
        b.send("a", "data", "from the grave")
        sim.run()
        assert a.datagrams == []
        assert injector.counts == {"crash": 1, "silence": 1}
        assert "b" in injector.silenced

    def test_inactive_window_injects_nothing(self, net, sim):
        injector = installed(net, Drop(match=DATA, start=100.0))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "x")
        sim.run()
        assert len(b.datagrams) == 1
        assert injector.counts == {}


class TestLifecycle:
    def test_uninstall_restores_network(self, net, sim):
        orig_send, orig_deliver = net.send, net._deliver
        injector = installed(net, Drop(match=DATA))
        assert net.send != orig_send
        injector.uninstall()
        assert net.send == orig_send
        assert net._deliver == orig_deliver
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "data", "x")
        sim.run()
        assert len(b.datagrams) == 1

    def test_double_install_rejected(self, net):
        injector = installed(net)
        with pytest.raises(FaultInjectionError):
            injector.install()

    def test_fault_rng_is_not_the_deployment_rng(self, net, sim):
        # Installing a plan must not perturb the run it observes: the
        # deployment RNG stream is identical with and without faults.
        installed(net, Drop(match=DATA, probability=0.5), seed=123)
        before = random.Random(0).random()
        assert net.rng.random() == before

    def test_deny_attestation_unknown_node_rejected(self):
        from repro.core.client import CyclosaNetwork

        deployment = CyclosaNetwork.create(num_nodes=3, seed=5,
                                           warmup_seconds=0)
        plan = FaultPlan(faults=(DenyAttestation(nodes=("ghost",)),))
        with pytest.raises(FaultInjectionError):
            install(plan, deployment)


class TestObsWiring:
    def test_injections_counted_in_obs(self, sim):
        from repro import obs

        obs.enable(simulator=sim)
        net = Network(sim, random.Random(0),
                      default_latency=ConstantLatency(0.01))
        installed(net, Drop(match=DATA))
        a = Recorder(net, "a")
        Recorder(net, "b")
        a.send("b", "data", "x")
        sim.run()
        counter = obs.OBS.registry.counter(
            "cyclosa_faults_injected_total",
            "faults injected by repro.faults, by kind", fault="drop")
        assert counter.value == 1
