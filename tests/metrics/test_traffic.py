"""Tests for the traffic-analysis metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.traffic import ks_statistic, size_advantage


class TestSizeAdvantage:
    def test_identical_populations_zero(self):
        advantage, _ = size_advantage([100, 200, 300], [100, 200, 300])
        assert advantage == 0.0

    def test_disjoint_populations_one(self):
        advantage, threshold = size_advantage([10, 20], [100, 200])
        assert advantage == 1.0
        assert 20 <= threshold < 100

    def test_constant_population_zero(self):
        advantage, _ = size_advantage([512] * 50, [512] * 50)
        assert advantage == 0.0

    def test_partial_overlap(self):
        advantage, _ = size_advantage([1, 2, 3, 4], [3, 4, 5, 6])
        assert 0.0 < advantage < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            size_advantage([], [1])
        with pytest.raises(ValueError):
            size_advantage([1], [])

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                    max_size=40),
           st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                    max_size=40))
    def test_property_bounds_and_symmetry(self, a, b):
        advantage_ab, _ = size_advantage(a, b)
        advantage_ba, _ = size_advantage(b, a)
        assert 0.0 <= advantage_ab <= 1.0
        assert advantage_ab == pytest.approx(advantage_ba)


class TestKsStatistic:
    def test_equals_threshold_advantage(self):
        a = [1, 5, 9, 12]
        b = [3, 5, 20]
        assert ks_statistic(a, b) == size_advantage(a, b)[0]

    def test_identical_zero(self):
        assert ks_statistic([7, 7, 7], [7, 7]) == 0.0
