"""Tests for the re-identification metric."""

import pytest

from repro.attacks.profiles import UserProfile
from repro.attacks.simattack import SimAttack
from repro.baselines.base import AttackSurface, EngineObservation
from repro.metrics.privacy import reidentification_rate
from repro.searchengine.engine import OR_SEPARATOR


@pytest.fixture
def attack():
    profiles = {"u1": UserProfile("u1"), "u2": UserProfile("u2")}
    for query in ("flu symptoms", "cancer treatment", "flu vaccine"):
        profiles["u1"].add_query(query)
    for query in ("football scores", "hockey league", "tennis open"):
        profiles["u2"].add_query(query)
    return SimAttack(profiles)


def obs(identity, text, user, **kwargs):
    return EngineObservation(identity=identity, text=text, true_user=user,
                             **kwargs)


class TestIdentifiedSurface:
    def test_real_queries_recognised(self, attack):
        observations = [
            obs("u1", "flu symptoms", "u1"),
            obs("u1", "celebrity gossip noise", "u1", is_fake=True),
        ]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.IDENTIFIED)
        assert rate == 1.0  # the one real query is recognised

    def test_unrecognisable_real_query(self, attack):
        observations = [obs("u1", "quantum flux capacitors", "u1")]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.IDENTIFIED)
        assert rate == 0.0


class TestGroupSurfaces:
    def test_group_identified_success(self, attack):
        text = OR_SEPARATOR.join(["zzz qqq", "flu symptoms", "www eee"])
        observations = [obs("u1", text, "u1", real_index=1, group_id=1)]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.GROUP_IDENTIFIED)
        assert rate == 1.0

    def test_group_anonymous_needs_user_too(self, attack):
        text = OR_SEPARATOR.join(["zzz qqq", "flu symptoms"])
        observations = [obs("issuer", text, "u1", real_index=1, group_id=1)]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.GROUP_ANONYMOUS)
        assert rate == 1.0

    def test_group_anonymous_wrong_user_fails(self, attack):
        text = OR_SEPARATOR.join(["zzz qqq", "flu symptoms"])
        # Ground truth says u2 issued it, but it matches u1's profile.
        observations = [obs("issuer", text, "u2", real_index=1, group_id=1)]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.GROUP_ANONYMOUS)
        assert rate == 0.0


class TestAnonymousSingle:
    def test_fake_dilution(self, attack):
        observations = [
            obs("relay1", "flu symptoms", "u1"),
            obs("relay2", "football scores", "u1", is_fake=True),
            obs("relay3", "hockey league", "u1", is_fake=True),
            obs("relay4", "tennis open", "u1", is_fake=True),
        ]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.ANONYMOUS_SINGLE)
        # Real query attributed correctly, but denominator includes the
        # three fakes: the paper's dilution argument.
        assert rate == pytest.approx(0.25)

    def test_k0_reduces_to_tor(self, attack):
        observations = [obs("relay", "flu symptoms", "u1")]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.ANONYMOUS_SINGLE)
        assert rate == 1.0

    def test_fake_attributed_to_original_user_not_counted(self, attack):
        # A fake is u2's real past query; the attacker may map it to u2,
        # but that is not a successful re-identification of anything.
        observations = [obs("relay", "football scores", "u1", is_fake=True)]
        rate = reidentification_rate(attack, observations,
                                     AttackSurface.ANONYMOUS_SINGLE)
        assert rate == 0.0


class TestEdgeCases:
    def test_empty_observations(self, attack):
        for surface in AttackSurface:
            assert reidentification_rate(attack, [], surface) == 0.0

    def test_group_surface_without_groups(self, attack):
        observations = [obs("u1", "plain", "u1")]
        assert reidentification_rate(
            attack, observations, AttackSurface.GROUP_IDENTIFIED) == 0.0
