"""Tests for the per-user exposure breakdown."""

import pytest

from repro.attacks.profiles import UserProfile
from repro.attacks.simattack import SimAttack
from repro.baselines.base import EngineObservation
from repro.metrics.privacy import per_user_exposure


@pytest.fixture
def attack():
    profiles = {"heavy": UserProfile("heavy"), "light": UserProfile("light")}
    for query in ("flu symptoms", "flu vaccine", "cancer symptoms",
                  "flu treatment"):
        profiles["heavy"].add_query(query)
    profiles["light"].add_query("espresso machines")
    return SimAttack(profiles)


def obs(text, user, fake=False):
    return EngineObservation(identity="relay", text=text, true_user=user,
                             is_fake=fake)


class TestPerUserExposure:
    def test_heavy_profile_more_exposed(self, attack):
        observations = [
            obs("flu symptoms", "heavy"),
            obs("flu vaccine", "heavy"),
            obs("totally novel words", "light"),
            obs("another novel thing", "light"),
        ]
        exposure = per_user_exposure(attack, observations)
        assert exposure["heavy"] > exposure["light"]
        assert exposure["light"] == 0.0

    def test_fakes_excluded_from_denominator(self, attack):
        observations = [
            obs("flu symptoms", "heavy"),
            obs("noise noise", "heavy", fake=True),
            obs("more noise", "heavy", fake=True),
        ]
        exposure = per_user_exposure(attack, observations)
        assert exposure["heavy"] == 1.0  # 1 real query, attributed

    def test_bounds(self, attack):
        observations = [obs("flu symptoms", "heavy"),
                        obs("qqq zzz", "heavy")]
        exposure = per_user_exposure(attack, observations)
        assert 0.0 <= exposure["heavy"] <= 1.0

    def test_empty(self, attack):
        assert per_user_exposure(attack, []) == {}
