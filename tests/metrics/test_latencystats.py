"""Tests for latency statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.latencystats import cdf_points, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_property_within_range(self, samples, q):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.median == 3.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(22.0)
        assert summary.p90 >= summary.median

    def test_row_renders(self):
        assert "median" in summarize([1.0]).row()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCdfPoints:
    def test_points_monotone(self):
        points = cdf_points(list(range(100)))
        latencies = [v for _, v in points]
        assert latencies == sorted(latencies)

    def test_custom_quantiles(self):
        points = cdf_points([1.0, 2.0], points=(0.5,))
        assert len(points) == 1 and points[0][0] == 0.5
