"""Tests for accuracy metrics."""

import pytest

from repro.metrics.accuracy import (
    AccuracyScore,
    correctness_completeness,
    mean_accuracy,
    precision_recall,
)


class TestCorrectnessCompleteness:
    def test_identical_sets_perfect(self):
        score = correctness_completeness(["a", "b"], ["a", "b"])
        assert score.perfect

    def test_half_and_half(self):
        score = correctness_completeness(["a", "b"], ["a", "c"])
        assert score.correctness == pytest.approx(0.5)
        assert score.completeness == pytest.approx(0.5)

    def test_subset_returned(self):
        score = correctness_completeness(["a", "b", "c", "d"], ["a", "b"])
        assert score.correctness == 1.0
        assert score.completeness == pytest.approx(0.5)

    def test_superset_returned(self):
        score = correctness_completeness(["a"], ["a", "b"])
        assert score.correctness == pytest.approx(0.5)
        assert score.completeness == 1.0

    def test_nothing_returned(self):
        score = correctness_completeness(["a"], [])
        assert score.correctness == 1.0  # nothing wrong was shown
        assert score.completeness == 0.0

    def test_empty_reference(self):
        score = correctness_completeness([], ["a"])
        assert score.completeness == 1.0
        assert score.correctness == 0.0

    def test_both_empty(self):
        assert correctness_completeness([], []).perfect

    def test_order_insensitive(self):
        a = correctness_completeness(["a", "b"], ["b", "a"])
        assert a.perfect


class TestMeanAccuracy:
    def test_averages(self):
        scores = [AccuracyScore(1.0, 0.0), AccuracyScore(0.0, 1.0)]
        mean = mean_accuracy(scores)
        assert mean.correctness == pytest.approx(0.5)
        assert mean.completeness == pytest.approx(0.5)

    def test_empty(self):
        mean = mean_accuracy([])
        assert mean.correctness == 0.0


class TestPrecisionRecall:
    def test_perfect(self):
        p, r = precision_recall([True, False], [True, False])
        assert p == 1.0 and r == 1.0

    def test_known_values(self):
        predicted = [True, True, False, False]
        actual = [True, False, True, False]
        p, r = precision_recall(predicted, actual)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)

    def test_nothing_predicted(self):
        p, r = precision_recall([False, False], [True, False])
        assert p == 1.0 and r == 0.0

    def test_nothing_actual(self):
        p, r = precision_recall([True], [False])
        assert p == 0.0 and r == 1.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            precision_recall([True], [True, False])
