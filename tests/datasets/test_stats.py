"""Tests for the log statistics helper."""

import pytest

from repro.datasets.aol import SyntheticAolLog, generate_aol_log
from repro.datasets.stats import describe


class TestDescribe:
    @pytest.fixture(scope="class")
    def stats(self):
        log = generate_aol_log(num_users=40, mean_queries_per_user=50,
                               seed=7)
        return describe(log)

    def test_counts(self, stats):
        assert stats.num_users == 40
        assert stats.num_queries > 40 * 5

    def test_sensitive_rate_near_target(self, stats):
        assert 0.10 < stats.sensitive_rate < 0.25

    def test_activity_skew_is_heavy(self, stats):
        assert stats.activity_skew > 2.0

    def test_user_overlap_is_low(self, stats):
        # The distinctiveness SimAttack needs: users share little
        # vocabulary.
        assert stats.mean_user_overlap < 0.4

    def test_terms_per_query_plausible(self, stats):
        assert 1.0 <= stats.mean_terms_per_query <= 4.0

    def test_rows_render(self, stats):
        rows = stats.rows()
        assert any("sensitive rate" in row[0] for row in rows)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            describe(SyntheticAolLog(records=[], users=[]))
