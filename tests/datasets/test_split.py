"""Tests for the train/test split."""

import pytest

from repro.datasets.aol import QueryRecord, SyntheticAolLog, generate_aol_log
from repro.datasets.split import train_test_split


class TestSplit:
    def test_fractions(self, small_log):
        train, test = train_test_split(small_log)
        total = len(small_log.records)
        assert len(train.records) + len(test.records) == total
        assert len(train.records) / total == pytest.approx(2 / 3, abs=0.05)

    def test_temporal_order_per_user(self, small_log):
        train, test = train_test_split(small_log)
        for user in small_log.users:
            train_times = [r.timestamp for r in train.queries_of(user)]
            test_times = [r.timestamp for r in test.queries_of(user)]
            if train_times and test_times:
                # Adversary prior strictly precedes protected queries.
                assert max(train_times) <= min(test_times)

    def test_every_active_user_in_both(self, small_log):
        train, test = train_test_split(small_log)
        for user in small_log.users:
            if len(small_log.queries_of(user)) >= 3:
                assert train.queries_of(user)
                assert test.queries_of(user)

    def test_tiny_users_go_to_training(self):
        records = [
            QueryRecord(query_id=0, user_id="u", timestamp=1.0,
                        text="only query", topic="sports",
                        is_sensitive=False),
        ]
        log = SyntheticAolLog(records=records, users=["u"])
        train, test = train_test_split(log)
        assert len(train.records) == 1 and len(test.records) == 0

    def test_invalid_fraction(self, small_log):
        with pytest.raises(ValueError):
            train_test_split(small_log, train_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(small_log, train_fraction=1.0)

    def test_custom_fraction(self, small_log):
        train, test = train_test_split(small_log, train_fraction=0.5)
        total = len(small_log.records)
        assert len(train.records) / total == pytest.approx(0.5, abs=0.06)
