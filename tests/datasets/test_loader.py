"""Tests for the AOL-format TSV loader."""

import pytest

from repro.core.sensitivity import SemanticAssessor
from repro.datasets.loader import label_with_categorizer, load_aol_tsv

SAMPLE = """AnonID\tQuery\tQueryTime\tItemRank\tClickURL
217\tflu symptoms\t2006-03-01 10:00:00\t1\thttp://x
217\tflu treatment\t2006-03-01 11:30:00\t\t
217\tfootball scores\t2006-03-02 09:00:00\t2\thttp://y
911\tcheap flights paris\t2006-03-01 12:00:00\t\t
911\t-\t2006-03-01 12:05:00\t\t
404\tsingle query user\t2006-03-03 08:00:00\t\t
bad line without tabs
217\tbroken time\tnot-a-time\t\t
"""


def sample_lines():
    return SAMPLE.splitlines()


class TestLoader:
    def test_parses_users_and_queries(self):
        log = load_aol_tsv(sample_lines())
        assert set(log.users) == {"u217", "u911", "u404"}
        assert len(log.queries_of("u217")) == 3

    def test_skips_malformed_rows(self):
        log = load_aol_tsv(sample_lines())
        texts = [r.text for r in log.records]
        assert "-" not in texts
        assert "broken time" not in texts

    def test_timestamps_relative_and_ordered(self):
        log = load_aol_tsv(sample_lines())
        times = [r.timestamp for r in log.records]
        assert times == sorted(times)
        assert times[0] == 0.0
        # 2006-03-01 10:00 -> 11:30 is 90 minutes.
        u217 = log.queries_of("u217")
        assert u217[1].timestamp - u217[0].timestamp == pytest.approx(5400)

    def test_min_queries_filter(self):
        log = load_aol_tsv(sample_lines(), min_queries_per_user=2)
        assert "u404" not in log.users
        assert "u217" in log.users

    def test_max_users_keeps_most_active(self):
        log = load_aol_tsv(sample_lines(), max_users=1)
        assert log.users == ["u217"]

    def test_default_labels_all_false(self):
        log = load_aol_tsv(sample_lines())
        assert not any(r.is_sensitive for r in log.records)

    def test_categorizer_labelling(self):
        assessor = SemanticAssessor(wordnet_terms={"flu", "symptoms"},
                                    mode="wordnet")
        log = load_aol_tsv(
            sample_lines(),
            sensitivity_labeller=label_with_categorizer(assessor))
        flagged = {r.text for r in log.records if r.is_sensitive}
        assert "flu symptoms" in flagged
        assert "football scores" not in flagged

    def test_loaded_log_feeds_the_attack_pipeline(self):
        # The loaded log must be a drop-in for the experiment machinery.
        from repro.attacks import SimAttack, build_profiles
        from repro.datasets.split import train_test_split

        log = load_aol_tsv(sample_lines())
        train, test = train_test_split(log)
        attack = SimAttack(build_profiles(train))
        assert attack.similarity("flu symptoms", "u217") >= 0.0

    def test_file_handle_compatible(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text(SAMPLE)
        with open(path) as handle:
            log = load_aol_tsv(handle)
        assert len(log.records) > 0
