"""Tests for the trending-queries bootstrap source."""

import pytest

from repro.datasets.trends import trending_queries
from repro.datasets.vocabulary import (
    SENSITIVE_TOPICS,
    build_topic_vocabularies,
)


class TestTrends:
    def test_count(self):
        assert len(trending_queries(25)) == 25

    def test_unique(self):
        queries = trending_queries(50)
        assert len(set(queries)) == 50

    def test_deterministic(self):
        assert trending_queries(20, seed=1) == trending_queries(20, seed=1)

    def test_seed_matters(self):
        assert trending_queries(20, seed=1) != trending_queries(20, seed=2)

    def test_no_sensitive_terms(self):
        # Trending queries come from neutral topics only — a node's
        # bootstrap fakes must not leak sensitive-looking traffic.
        vocabularies = build_topic_vocabularies()
        sensitive_terms = set()
        for topic in SENSITIVE_TOPICS:
            sensitive_terms.update(vocabularies[topic].terms)
        for query in trending_queries(100):
            assert not set(query.split()) & sensitive_terms

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            trending_queries(0)
