"""Tests for the synthetic AOL log generator."""

import pytest

from repro.datasets.aol import (
    LOG_WINDOW_SECONDS,
    PAPER_SENSITIVE_RATE,
    SyntheticAolLog,
    generate_aol_log,
)
from repro.datasets.vocabulary import SENSITIVE_TOPICS


@pytest.fixture(scope="module")
def log():
    return generate_aol_log(num_users=80, mean_queries_per_user=80, seed=21)


class TestGeneration:
    def test_user_count(self, log):
        assert len(log.users) == 80

    def test_every_user_queries(self, log):
        for user in log.users:
            assert len(log.queries_of(user)) >= 5

    def test_sensitive_rate_calibrated(self, log):
        # §VII-C crowd-sourcing: 15.74 % of queries are sensitive.
        assert log.sensitive_rate() == pytest.approx(
            PAPER_SENSITIVE_RATE, abs=0.035)

    def test_labels_match_topics(self, log):
        for record in log.records[:500]:
            assert record.is_sensitive == (record.topic in SENSITIVE_TOPICS)

    def test_timestamps_in_window_and_sorted(self, log):
        times = [r.timestamp for r in log.records]
        assert times == sorted(times)
        assert all(0 <= t <= LOG_WINDOW_SECONDS for t in times)

    def test_queries_nonempty(self, log):
        assert all(record.text.strip() for record in log.records)

    def test_activity_is_skewed(self, log):
        counts = sorted(len(log.queries_of(u)) for u in log.users)
        assert counts[-1] > 3 * counts[len(counts) // 2]

    def test_deterministic(self):
        a = generate_aol_log(num_users=10, mean_queries_per_user=20, seed=5)
        b = generate_aol_log(num_users=10, mean_queries_per_user=20, seed=5)
        assert [r.text for r in a.records] == [r.text for r in b.records]

    def test_seed_changes_log(self):
        a = generate_aol_log(num_users=10, mean_queries_per_user=20, seed=5)
        b = generate_aol_log(num_users=10, mean_queries_per_user=20, seed=6)
        assert [r.text for r in a.records] != [r.text for r in b.records]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generate_aol_log(num_users=0)
        with pytest.raises(ValueError):
            generate_aol_log(num_users=5, exploration_rate=1.0)

    def test_users_are_distinguishable(self, log):
        # Two users' term sets should differ substantially — the property
        # SimAttack exploits.
        users = log.users[:2]
        terms = []
        for user in users:
            bag = set()
            for record in log.queries_of(user):
                bag.update(record.text.split())
            terms.append(bag)
        overlap = len(terms[0] & terms[1]) / min(len(terms[0]), len(terms[1]))
        assert overlap < 0.5


class TestLogApi:
    def test_most_active_users_sorted(self, log):
        ranked = log.most_active_users(10)
        counts = [len(log.queries_of(u)) for u in ranked]
        assert counts == sorted(counts, reverse=True)
        assert len(ranked) == 10

    def test_restricted_to(self, log):
        subset = log.restricted_to(log.users[:5])
        assert set(r.user_id for r in subset.records) <= set(log.users[:5])
        assert subset.users == log.users[:5]

    def test_empty_log(self):
        empty = SyntheticAolLog(records=[], users=[])
        assert empty.sensitive_rate() == 0.0
        assert empty.most_active_users(5) == []
