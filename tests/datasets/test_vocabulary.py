"""Tests for repro.datasets.vocabulary."""

from repro.datasets.vocabulary import (
    ALL_TOPICS,
    GENERAL_TERMS,
    NEUTRAL_TOPICS,
    SENSITIVE_TOPICS,
    build_topic_vocabularies,
)


class TestTopics:
    def test_sensitive_topics_match_google_policy(self):
        # §V-A1: health, politics, sex, religion.
        assert set(SENSITIVE_TOPICS) == {"health", "sex", "politics",
                                         "religion"}

    def test_topics_partition(self):
        assert set(ALL_TOPICS) == set(SENSITIVE_TOPICS) | set(NEUTRAL_TOPICS)
        assert not set(SENSITIVE_TOPICS) & set(NEUTRAL_TOPICS)


class TestVocabularies:
    def test_every_topic_has_vocabulary(self):
        vocabularies = build_topic_vocabularies()
        assert set(vocabularies) == set(ALL_TOPICS)

    def test_sensitivity_flag(self):
        vocabularies = build_topic_vocabularies()
        assert vocabularies["health"].sensitive
        assert not vocabularies["sports"].sensitive

    def test_expansion_grows_vocabulary(self):
        vocabularies = build_topic_vocabularies(extra_per_seed=2)
        for vocabulary in vocabularies.values():
            assert len(vocabulary.terms) > 3 * len(vocabulary.seeds)

    def test_terms_unique_within_topic(self):
        vocabularies = build_topic_vocabularies()
        for vocabulary in vocabularies.values():
            assert len(vocabulary.terms) == len(set(vocabulary.terms))

    def test_contains_operator(self):
        vocabularies = build_topic_vocabularies()
        health = vocabularies["health"]
        assert "symptoms" in health
        assert "football" not in health

    def test_seeds_subset_of_terms(self):
        vocabularies = build_topic_vocabularies()
        for vocabulary in vocabularies.values():
            assert set(vocabulary.seeds) <= set(vocabulary.terms)

    def test_general_terms_disjoint_from_seeds(self):
        vocabularies = build_topic_vocabularies()
        seeds = {seed for v in vocabularies.values() for seed in v.seeds}
        assert not set(GENERAL_TERMS) & seeds

    def test_deterministic(self):
        a = build_topic_vocabularies()
        b = build_topic_vocabularies()
        assert all(a[t].terms == b[t].terms for t in ALL_TOPICS)
