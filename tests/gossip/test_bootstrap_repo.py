"""Tests for repro.gossip.bootstrap_repo."""

import random

import pytest

from repro.gossip.bootstrap_repo import PublicRepository


@pytest.fixture
def repo():
    return PublicRepository(random.Random(3))


class TestRepository:
    def test_publish_and_sample(self, repo):
        repo.publish("a")
        repo.publish("b")
        assert set(repo.sample(10)) == {"a", "b"}

    def test_publish_idempotent(self, repo):
        repo.publish("a")
        repo.publish("a")
        assert len(repo) == 1

    def test_sample_excludes(self, repo):
        for address in "abcd":
            repo.publish(address)
        assert "a" not in repo.sample(10, exclude=["a"])

    def test_sample_bounded(self, repo):
        for address in "abcdefgh":
            repo.publish(address)
        assert len(repo.sample(3)) == 3

    def test_retire(self, repo):
        repo.publish("a")
        repo.retire("a")
        assert len(repo) == 0

    def test_retire_unknown_is_noop(self, repo):
        repo.retire("ghost")

    def test_empty_sample(self, repo):
        assert repo.sample(5) == []
