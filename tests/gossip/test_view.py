"""Tests for repro.gossip.view."""

import random

import pytest

from repro.gossip.view import NodeDescriptor, PartialView


@pytest.fixture
def rng():
    return random.Random(17)


class TestDescriptor:
    def test_aged(self):
        d = NodeDescriptor("a", 2)
        assert d.aged().age == 3 and d.aged().address == "a"

    def test_fresh(self):
        assert NodeDescriptor("a", 9).fresh().age == 0


class TestPartialView:
    def test_capacity_enforced(self, rng):
        view = PartialView(capacity=3)
        for index in range(6):
            view.insert(NodeDescriptor(f"n{index}", age=index))
        assert len(view) == 3
        # Oldest entries were evicted first.
        assert set(view.addresses()) == {"n0", "n1", "n2"}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PartialView(capacity=0)

    def test_insert_keeps_youngest_duplicate(self):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("a", age=5))
        view.insert(NodeDescriptor("a", age=1))
        assert view.descriptors()[0].age == 1
        view.insert(NodeDescriptor("a", age=9))  # older: ignored
        assert view.descriptors()[0].age == 1

    def test_increase_ages(self):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("a", age=0))
        view.increase_ages()
        assert view.descriptors()[0].age == 1

    def test_oldest_peer(self):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("young", age=0))
        view.insert(NodeDescriptor("old", age=7))
        assert view.oldest_peer() == "old"

    def test_oldest_peer_empty(self):
        assert PartialView(capacity=4).oldest_peer() is None

    def test_sample_excludes(self, rng):
        view = PartialView(capacity=8)
        for index in range(8):
            view.insert(NodeDescriptor(f"n{index}", age=0))
        sample = view.sample(3, rng, exclude=["n0", "n1"])
        assert len(sample) == 3
        assert not {"n0", "n1"} & set(sample)

    def test_sample_returns_all_when_small(self, rng):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("a", age=0))
        assert view.sample(10, rng) == ["a"]

    def test_remove(self):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("a", age=0))
        view.remove("a")
        assert view.is_empty()
        view.remove("ghost")  # idempotent


class TestMerge:
    def test_merge_keeps_capacity(self, rng):
        view = PartialView(capacity=4)
        for index in range(4):
            view.insert(NodeDescriptor(f"n{index}", age=index))
        received = [NodeDescriptor(f"r{index}", age=0) for index in range(4)]
        view.merge(received, sent=[], heal=2, swap=0, rng=rng)
        assert len(view) == 4

    def test_heal_removes_oldest_first(self, rng):
        view = PartialView(capacity=3)
        view.insert(NodeDescriptor("ancient", age=50))
        view.insert(NodeDescriptor("old", age=10))
        view.insert(NodeDescriptor("new", age=0))
        view.merge([NodeDescriptor("fresh", age=0)], sent=[],
                   heal=1, swap=0, rng=rng)
        assert "ancient" not in view
        assert "fresh" in view

    def test_swap_removes_sent_entries(self, rng):
        view = PartialView(capacity=3)
        a = NodeDescriptor("a", age=1)
        view.insert(a)
        view.insert(NodeDescriptor("b", age=1))
        view.insert(NodeDescriptor("c", age=1))
        view.merge([NodeDescriptor("d", age=0)], sent=[a],
                   heal=0, swap=1, rng=rng)
        assert "a" not in view
        assert "d" in view

    def test_merge_prefers_younger_duplicates(self, rng):
        view = PartialView(capacity=4)
        view.insert(NodeDescriptor("a", age=9))
        view.merge([NodeDescriptor("a", age=1)], sent=[],
                   heal=0, swap=0, rng=rng)
        assert view.descriptors()[0].age == 1
