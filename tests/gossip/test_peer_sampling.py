"""Tests for repro.gossip.peer_sampling: overlay health and healing."""

import random

import pytest

from repro.gossip.bootstrap_repo import PublicRepository
from repro.gossip.peer_sampling import PeerSamplingService
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode


class OverlayNode(NetNode):
    def __init__(self, network, address, rng, view_size=6):
        super().__init__(network, address)
        self.pss = PeerSamplingService(self, rng, view_size=view_size,
                                       interval=2.0)

    def handle_request(self, ctx):
        self.pss.handle_request(ctx)


def build_overlay(num_nodes=16, seed=5, view_size=6):
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.005))
    repo = PublicRepository(rng)
    nodes = []
    for index in range(num_nodes):
        node = OverlayNode(net, f"n{index}", rng, view_size=view_size)
        node.pss.bootstrap(repo.sample(4))
        repo.publish(node.address)
        nodes.append(node)
    for node in nodes:
        node.pss.start()
    return sim, net, repo, nodes


class TestOverlay:
    def test_views_fill_to_capacity(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=60)
        assert all(len(n.pss.view) == 6 for n in nodes)

    def test_rounds_progress(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=60)
        assert all(n.pss.rounds_completed > 5 for n in nodes)

    def test_overlay_is_connected(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=60)
        # BFS over the union of views.
        edges = {n.address: set(n.pss.view.addresses()) for n in nodes}
        seen = {nodes[0].address}
        frontier = [nodes[0].address]
        while frontier:
            current = frontier.pop()
            for neighbour in edges[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert len(seen) == len(nodes)

    def test_views_keep_changing(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=30)
        before = set(nodes[0].pss.view.addresses())
        sim.run(until=120)
        after = set(nodes[0].pss.view.addresses())
        assert before != after  # continuous reshuffling

    def test_random_peers_excludes(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=30)
        view = nodes[0].pss.view.addresses()
        peers = nodes[0].pss.random_peers(3, exclude=[view[0]])
        assert view[0] not in peers

    def test_no_self_in_view(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=60)
        for node in nodes:
            assert node.address not in node.pss.view

    def test_dead_peer_healed_out(self):
        sim, net, _, nodes = build_overlay()
        sim.run(until=30)
        victim = nodes[3]
        victim.pss.stop()
        net.unregister(victim.address)
        sim.run(until=300)
        holders = [n for n in nodes if n is not victim
                   and victim.address in n.pss.view]
        # Self-healing: (almost) nobody still references the dead node.
        assert len(holders) <= 1

    def test_stop_halts_gossip(self):
        sim, _, _, nodes = build_overlay()
        sim.run(until=20)
        nodes[0].pss.stop()
        rounds = nodes[0].pss.rounds_completed
        sim.run(until=60)
        assert nodes[0].pss.rounds_completed == rounds

    def test_deterministic_given_seed(self):
        sim1, _, _, nodes1 = build_overlay(seed=9)
        sim1.run(until=40)
        sim2, _, _, nodes2 = build_overlay(seed=9)
        sim2.run(until=40)
        views1 = [sorted(n.pss.view.addresses()) for n in nodes1]
        views2 = [sorted(n.pss.view.addresses()) for n in nodes2]
        assert views1 == views2


class TestBootstrap:
    def test_bootstrap_skips_self(self):
        rng = random.Random(1)
        sim = Simulator()
        net = Network(sim, rng)
        node = OverlayNode(net, "solo", rng)
        node.pss.bootstrap(["solo", "other"])
        assert node.pss.view.addresses() == ["other"]
