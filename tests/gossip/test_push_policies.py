"""Push-only vs push-pull gossip policies."""

import random

from repro.gossip.bootstrap_repo import PublicRepository
from repro.gossip.peer_sampling import PeerSamplingService
from repro.net.latency import ConstantLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, NetNode


class PolicyNode(NetNode):
    def __init__(self, network, address, rng, push_pull):
        super().__init__(network, address)
        self.pss = PeerSamplingService(self, rng, view_size=6,
                                       interval=2.0, push_pull=push_pull)

    def handle_request(self, ctx):
        self.pss.handle_request(ctx)

    def handle_datagram(self, message):
        self.pss.handle_push(message)


def build(push_pull, num_nodes=16, seed=4):
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, rng, default_latency=ConstantLatency(0.005))
    repo = PublicRepository(rng)
    nodes = []
    for index in range(num_nodes):
        node = PolicyNode(net, f"n{index}", rng, push_pull)
        node.pss.bootstrap(repo.sample(3))
        repo.publish(node.address)
        nodes.append(node)
    for node in nodes:
        node.pss.start()
    return sim, net, nodes


class TestPushOnly:
    def test_views_still_fill(self):
        sim, _, nodes = build(push_pull=False)
        sim.run(until=120)
        assert all(len(n.pss.view) >= 4 for n in nodes)

    def test_rounds_progress_without_replies(self):
        sim, _, nodes = build(push_pull=False)
        sim.run(until=60)
        assert all(n.pss.rounds_completed > 5 for n in nodes)

    def test_push_pull_heals_dead_peers_faster(self):
        """The original paper's argument for push-pull: push-only has
        no timeout signal, so dead entries linger."""

        def dead_references_after(push_pull):
            sim, net, nodes = build(push_pull=push_pull, seed=9)
            sim.run(until=40)
            victim = nodes[5]
            victim.pss.stop()
            net.unregister(victim.address)
            sim.run(until=400)
            return sum(1 for n in nodes if n is not victim
                       and victim.address in n.pss.view)

        assert dead_references_after(True) <= dead_references_after(False)

    def test_push_message_ignored_by_wrong_kind(self):
        sim, net, nodes = build(push_pull=False)
        sim.run(until=10)
        node = nodes[0]

        class FakeMessage:
            kind = "unrelated"
            payload = []

        assert node.pss.handle_push(FakeMessage()) is False
