#!/usr/bin/env python
"""Scenario: a user imports their own sensitive-topic dictionary.

§V-A1: "by default a user in CYCLOSA can select sensitive categories
among health, politics, sex, and religion. Nevertheless, a user can
import dictionaries to create other sensitive topics."

Here a user going through legal and financial trouble imports a custom
"legal-finance" dictionary. Queries touching it get maximum protection;
their ordinary queries stay cheap. The demo also shows the flip side:
with only the *default* topics, the same legal queries would have been
under-protected.

Run:  python examples/custom_sensitive_topics.py
"""

from repro import CyclosaConfig, CyclosaNetwork
from repro.core.sensitivity import SemanticAssessor
from repro.text.wordnet import SyntheticWordNet

# The imported dictionary: terms the user personally considers
# sensitive. Any vocabulary works — CYCLOSA just needs the term set.
LEGAL_FINANCE_TERMS = {
    "lawyer", "lawsuit", "attorney", "bankruptcy", "foreclosure",
    "divorce", "custody", "debt", "creditor", "repossession",
    "eviction", "garnishment", "settlement", "alimony",
}

SESSION = [
    "bankruptcy lawyer free consultation",
    "foreclosure timeline after missed payments",
    "divorce custody rights",
    "pizza delivery near me",
    "laptop reviews compare prices",
]


def build_network(semantic, label):
    config = CyclosaConfig(kmax=7)
    net = CyclosaNetwork.create(num_nodes=14, seed=61, config=config,
                                semantic=semantic)
    print(f"\n--- {label} ---")
    print(f"{'query':<44} {'sensitive?':<11} {'k'}")
    for query in SESSION:
        result = net.node(0).search(query)
        report = net.nodes[0].sensitivity.assess(query)
        print(f"{query:<44} {str(report.semantic_sensitive):<11} {result.k}")


def main() -> None:
    wordnet = SyntheticWordNet.build(seed=61)

    # Default protection: only the four Google-policy topics.
    default_assessor = SemanticAssessor.from_resources(
        wordnet=wordnet, mode="wordnet")
    build_network(default_assessor, "default topics only "
                  "(legal queries under-protected)")

    # The user's imported dictionary joins the WordNet leg.
    custom_assessor = SemanticAssessor(
        wordnet_terms=set(wordnet.sensitive_dictionary())
        | LEGAL_FINANCE_TERMS,
        mode="wordnet")
    build_network(custom_assessor, "with the imported legal-finance "
                  "dictionary (kmax on legal queries)")


if __name__ == "__main__":
    main()
