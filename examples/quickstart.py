#!/usr/bin/env python
"""Quickstart: build a CYCLOSA deployment and search privately.

Creates a 20-node overlay over the deterministic network simulator,
issues a few queries from different users, and shows both sides of the
story: what the *user* gets back (accurate results) and what the
*search engine* observed (relays and fakes, never the requester).

Run:  python examples/quickstart.py
"""

from repro import CyclosaNetwork


def main() -> None:
    print("Bootstrapping a 20-node CYCLOSA overlay "
          "(gossip warm-up, attestation, engine TLS)...")
    net = CyclosaNetwork.create(num_nodes=20, seed=7)

    queries = [
        (0, "flu symptoms treatment"),          # semantically sensitive
        (1, "football playoffs tickets"),        # neutral, fresh
        (2, "cancer chemotherapy dosage"),       # semantically sensitive
        (3, "laptop reviews compare"),           # neutral
    ]

    print("\n--- the user's view -------------------------------------")
    for node_index, query in queries:
        result = net.node(node_index).search(query)
        print(f"\nuser {node_index} searched {query!r}")
        print(f"  adaptive k      : {result.k} fake queries")
        print(f"  latency         : {result.latency:.3f} s (simulated)")
        print(f"  top results     :")
        for url in result.documents[:3]:
            print(f"    - {url}")

    print("\n--- the search engine's view -----------------------------")
    print(f"{'identity':<10} {'fake?':<6} query")
    for entry in net.engine_log[-12:]:
        print(f"{entry.identity:<10} {str(entry.is_fake):<6} {entry.text}")

    print("\nNote: the engine never sees the requesting node's address —")
    print("every query (real or fake) arrived from a different relay.")


if __name__ == "__main__":
    main()
