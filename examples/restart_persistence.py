#!/usr/bin/env python
"""Scenario: the browser restarts — what happens to the fake pool?

A CYCLOSA node's quality of protection depends on its enclave's table
of other users' past queries. That table must survive browser restarts
(or every restart would degrade everyone's fakes back to trending
queries) — but it must *never* be readable by the machine's owner,
because it literally contains other people's search history.

This demo seals the table to disk, "restarts" the node (destroys the
enclave), shows the host-side blob is opaque, and restores it into a
fresh enclave. It then shows the two failure cases: a tampered build
and a different machine both fail to unseal.

Run:  python examples/restart_persistence.py
"""

import random

from repro import CyclosaNetwork
from repro.core.enclave import CyclosaEnclave
from repro.sgx.enclave import EnclaveHost
from repro.sgx.sealing import SealingError, SealingService


def main() -> None:
    net = CyclosaNetwork.create(num_nodes=10, seed=33)
    # Generate some traffic so relays accumulate real past queries.
    for index in range(6):
        net.node(index % 4).search(f"warmup query number {index}",
                                   k_override=2)

    node = net.nodes[0]
    size = node.enclave.table_size()
    print(f"node000's enclave table holds {size} past queries")

    blob = node.persist_table()
    print(f"sealed blob: {len(blob.ciphertext)} bytes of ciphertext "
          f"(host-readable metadata: platform {blob.platform_id}, "
          f"measurement {blob.measurement[:4].hex()}...)")
    print(f"does the blob leak query text? "
          f"{b'warmup query' in blob.ciphertext}")

    print("\n'restarting' the browser: destroying the enclave...")
    node.host.destroy_enclave(node.enclave)
    fresh = node.host.create_enclave(CyclosaEnclave)
    print(f"fresh enclave table size: {fresh.table_size()}")
    restored = fresh.unseal_table(node.sealing, blob)
    print(f"restored {restored} entries after unsealing")

    print("\nnegative cases:")

    class ForkedEnclave(CyclosaEnclave):
        ENCLAVE_VERSION = "1.0-modified"

    fork = node.host.create_enclave(ForkedEnclave)
    try:
        fork.unseal_table(node.sealing, blob)
        print("  modified build unsealed the table (BUG!)")
    except SealingError as exc:
        print(f"  modified build: rejected ({exc})")

    other_rng = random.Random(99)
    other_host = EnclaveHost(other_rng)
    other_sealing = SealingService(other_host.platform_id, other_rng)
    stranger = other_host.create_enclave(CyclosaEnclave)
    try:
        stranger.unseal_table(other_sealing, blob)
        print("  another machine unsealed the table (BUG!)")
    except SealingError as exc:
        print(f"  another machine: rejected ({exc})")


if __name__ == "__main__":
    main()
