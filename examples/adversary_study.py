#!/usr/bin/env python
"""Scenario: measure how well a curious search engine can re-identify you.

Builds a synthetic population of search users (the AOL-like workload),
gives the adversary each user's history as prior knowledge, then
replays new queries through three protection levels and runs SimAttack
on what reaches the engine:

1. no protection (the engine links identity to query directly),
2. TOR-style unlinkability only,
3. CYCLOSA (unlinkability + adaptive indistinguishability).

Run:  python examples/adversary_study.py
"""

from repro.attacks import SimAttack, build_profiles
from repro.baselines import CyclosaAnalytic, DirectSearch, TorSearch
from repro.core.sensitivity import SemanticAssessor
from repro.datasets import generate_aol_log, train_test_split
from repro.metrics.privacy import reidentification_rate
from repro.text.wordnet import SyntheticWordNet


def main() -> None:
    print("Generating a synthetic 60-user query log...")
    log = generate_aol_log(num_users=60, mean_queries_per_user=80, seed=4)
    train, test = train_test_split(log)
    print(f"  {len(train.records)} training queries (the adversary's prior)")
    print(f"  {len(test.records)} testing queries (to protect)")

    attack = SimAttack(build_profiles(train))
    semantic = SemanticAssessor.from_resources(
        wordnet=SyntheticWordNet.build(seed=4), mode="wordnet")

    systems = [
        ("No protection", DirectSearch()),
        ("TOR (unlinkability only)", TorSearch(seed=4)),
        ("CYCLOSA (kmax=7, adaptive)",
         CyclosaAnalytic(semantic, kmax=7, adaptive=True, seed=4)),
    ]
    if isinstance(systems[2][1], CyclosaAnalytic):
        for user in log.users:
            systems[2][1].preload_history(
                user, [r.text for r in train.queries_of(user)])

    print(f"\n{'system':<30} {'queries seen':<13} "
          f"{'re-identification rate':<22}")
    print("-" * 66)
    sample = test.records[:1200]
    for label, system in systems:
        observations = []
        for record in sample:
            observations.extend(system.protect(record.user_id, record.text))
        rate = reidentification_rate(attack, observations,
                                     system.attack_surface)
        print(f"{label:<30} {len(observations):<13} {rate * 100:>6.1f} %")

    print("\nFor 'No protection' the engine already knows who you are —")
    print("the attack trivially wins on every query it can match.")
    print("TOR hides the address but profiles betray ~1/3 of queries.")
    print("CYCLOSA buries each real query among look-alike fakes from")
    print("other users, collapsing the attack's yield.")


if __name__ == "__main__":
    main()
