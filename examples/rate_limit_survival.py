#!/usr/bin/env python
"""Scenario: why centralized private-search proxies get banned.

Replays one hour of query traffic from 100 active users (31.23
queries/hour each, the paper's most-active-AOL-user rate) against a
search engine that rate-limits each network identity to 1000
requests/hour — through the centralized X-Search proxy and through a
100-node CYCLOSA overlay.

Run:  python examples/rate_limit_survival.py
"""

from repro.experiments.fig8d_ratelimit import run


def main() -> None:
    outcome = run(num_users=100, k=3, duration_minutes=60,
                  num_cyclosa_nodes=100, bucket_minutes=10, seed=3)

    print(f"Offered engine-side load: {outcome['offered_per_hour']:.0f} "
          f"queries/hour (100 users x 31.23 q/h x (k+1))")
    print(f"Engine per-identity limit: {outcome['limit_per_hour']}/hour\n")

    print(f"{'minute':<8} {'X-Search adm/h':<15} {'X-Search rej/h':<15} "
          f"{'CYCLOSA max/node/h':<19}")
    print("-" * 60)
    for point in outcome["series"]:
        print(f"{point['minute']:<8.0f} "
              f"{point['xsearch_admitted_per_h']:<15.0f} "
              f"{point['xsearch_rejected_per_h']:<15.0f} "
              f"{point['cyclosa_max_per_node_h']:<19.0f}")

    print(f"\nX-Search total rejections: {outcome['xsearch_rejected_total']}"
          f"  (the proxy identity is captcha-blocked)")
    print(f"CYCLOSA total rejections:  {outcome['cyclosa_rejected_total']}"
          f"  (every node stays far below the limit)")


if __name__ == "__main__":
    main()
