#!/usr/bin/env python
"""Scenario: a user with an ongoing health concern.

This is the paper's motivating workload (§I: "health issues, sexual,
political or religious preferences"). The user repeatedly searches
around one medical condition. The demo shows the two sensitivity
dimensions at work:

- the *semantic* assessment flags medical vocabulary → kmax fakes;
- the *linkability* assessment rises as the user's local history grows,
  so even innocuous follow-ups ("best pillows for recovery") get
  increasing protection once they resemble the user's own past queries.

Run:  python examples/private_health_search.py
"""

from repro import CyclosaConfig, CyclosaNetwork


def main() -> None:
    config = CyclosaConfig(kmax=7, sensitive_topics=("health",))
    net = CyclosaNetwork.create(num_nodes=16, seed=21, config=config)
    user = net.node(0)

    session = [
        "arthritis symptoms hands",
        "arthritis treatment medication",
        "arthritis medication dosage",
        "clinic near me arthritis",
        "travel insurance europe",        # unrelated, fresh
        "arthritis treatment medication",  # repeated: highly linkable
    ]

    print(f"{'query':<38} {'semantic':<9} {'linkability':<12} {'k':<3} "
          f"{'latency':<8}")
    print("-" * 76)
    for query in session:
        node = user.node
        report = node.sensitivity.assess(query)
        result = user.search(query)
        print(f"{query:<38} {str(report.semantic_sensitive):<9} "
              f"{report.linkability:<12.3f} {result.k:<3} "
              f"{result.latency:>6.3f}s")

    print("\nWhat the engine's profile of ANY single identity looks like:")
    by_identity = {}
    for entry in net.engine_log:
        by_identity.setdefault(entry.identity, []).append(entry.text)
    busiest = max(by_identity, key=lambda i: len(by_identity[i]))
    for text in by_identity[busiest][:6]:
        print(f"  {busiest}: {text}")
    print("\nEach relay's outgoing stream mixes many users' queries and")
    print("fakes — no identity accumulates this user's health history.")


if __name__ == "__main__":
    main()
